package fed

// The federation ledger soak test: a randomized probe↔aggregator run with
// injected full-fleet disconnects and probe kill -9 (goroutines reaped
// without Close, spool reopened cold, ACKED watermark possibly stale).
// The pinned invariant is the delivery ledger:
//
//	Σ points flushed to the spool, across every probe incarnation
//	    == points the aggregator applied == points in the DB
//
// i.e. no spooled (a fortiori no acked) batch is ever lost, and sequence
// dedup prevents any batch from applying twice no matter how many times
// the chaos schedule forces a resend.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"ruru/internal/analytics"
	"ruru/internal/mq"
	"ruru/internal/tsdb"
)

// soakProbe is one probe incarnation plus its lifetime accounting.
type soakProbe struct {
	id      string
	dir     string
	bus     *mq.Bus
	pr      *Probe
	cancel  context.CancelFunc
	done    chan struct{}
	flushed uint64 // PointsOut of PRIOR incarnations
	pubBase uint64 // PointsOut of the live incarnation at chunk start
}

func (s *soakProbe) start(t *testing.T, addr string) {
	t.Helper()
	s.bus = mq.NewBus()
	pr, err := NewProbe(ProbeConfig{
		Addr: addr, ID: s.id, SpoolDir: s.dir,
		BatchSize: 32, FlushEvery: 2 * time.Millisecond,
		MaxSegmentBytes: 64 << 10,
	}, s.bus)
	if err != nil {
		t.Fatal(err)
	}
	s.pr = pr
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.done = make(chan struct{})
	go func() { pr.Run(ctx); close(s.done) }()
}

// crash reaps the incarnation without Close: the spool keeps whatever the
// "kill -9" left on disk, in-memory state is discarded.
func (s *soakProbe) crash(t *testing.T) {
	t.Helper()
	st := s.pr.Stats()
	if st.SpoolErrors != 0 {
		t.Fatalf("probe %s spool errors: %d", s.id, st.SpoolErrors)
	}
	s.flushed += st.PointsOut
	s.cancel()
	<-s.done
	s.bus.Close()
}

func TestSoakFederationLedger(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	db := tsdb.Open(tsdb.Options{})
	defer db.Close()
	agg, err := NewAggregator(AggConfig{Listen: "127.0.0.1:0"}, db)
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	rng := rand.New(rand.NewSource(7))
	probes := []*soakProbe{
		{id: "soak-0", dir: t.TempDir()},
		{id: "soak-1", dir: t.TempDir()},
	}
	for _, sp := range probes {
		sp.start(t, agg.Addr().String())
	}

	published := 0
	// publishChunk feeds n unique measurements to sp and waits until the
	// probe has flushed them all to the spool (so the crash/disconnect
	// ledger below is exact: nothing countable sits in the bus queue).
	publishChunk := func(sp *soakProbe, n int) {
		t.Helper()
		sp.pubBase = sp.pr.Stats().PointsOut
		for i := 0; i < n; i++ {
			published++
			e := analytics.Enriched{
				Time:    int64(published) * 1e6, // unique per point
				TotalNs: 30e6, InternalNs: 10e6, ExternalNs: 20e6,
				Src: analytics.Endpoint{City: fmt.Sprintf("City%d", published%5), CountryCode: "NZ"},
				Dst: analytics.Endpoint{City: "Los Angeles", CountryCode: "US"},
			}
			sp.bus.Publish(mq.Message{Topic: analytics.TopicEnriched,
				Payload: analytics.MarshalEnriched(nil, &e)})
		}
		deadline := time.Now().Add(10 * time.Second)
		for sp.pr.Stats().PointsOut-sp.pubBase != uint64(n) {
			if time.Now().After(deadline) {
				t.Fatalf("probe %s flushed %d/%d", sp.id,
					sp.pr.Stats().PointsOut-sp.pubBase, n)
			}
			time.Sleep(time.Millisecond)
		}
	}

	const rounds = 25
	for round := 0; round < rounds; round++ {
		for _, sp := range probes {
			publishChunk(sp, 50+rng.Intn(400))
		}
		switch rng.Intn(3) {
		case 0:
			// Sever every connection while acks may still be in flight:
			// probes must reconnect and replay their unacked tail.
			agg.DropConnections()
		case 1:
			// kill -9 one probe and restart it cold from its spool.
			victim := probes[rng.Intn(len(probes))]
			victim.crash(t)
			victim.start(t, agg.Addr().String())
		case 2:
			// Let it run.
		}
	}

	// Final drain: everything every incarnation ever spooled must be
	// applied exactly once.
	var totalFlushed uint64
	for _, sp := range probes {
		totalFlushed += sp.flushed + sp.pr.Stats().PointsOut
	}
	deadline := time.Now().Add(soakDrainTimeout())
	for {
		written, _ := db.WriteStats()
		if written == totalFlushed {
			break
		}
		if written > totalFlushed {
			t.Fatalf("duplicate apply: db %d > flushed %d", written, totalFlushed)
		}
		if time.Now().After(deadline) {
			t.Fatalf("lost batches: db %d, flushed %d (agg stats %+v)",
				written, totalFlushed, agg.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Settle and re-check: a straggling resend must not double-apply.
	time.Sleep(100 * time.Millisecond)
	written, _ := db.WriteStats()
	if written != totalFlushed {
		t.Fatalf("post-settle duplicate apply: db %d != flushed %d", written, totalFlushed)
	}
	if totalFlushed != uint64(published) {
		t.Fatalf("flushed %d != published %d (feeder lost measurements)", totalFlushed, published)
	}

	st := agg.Stats()
	if st.Points != written {
		t.Fatalf("aggregator applied %d, db has %d", st.Points, written)
	}
	if st.BadFrames != 0 || st.DecodeErrors != 0 || st.WriteErrors != 0 {
		t.Fatalf("protocol errors during soak: %+v", st)
	}
	// The chaos schedule must actually have exercised the dedup path in a
	// typical run; if it did not, the seed needs changing, not the code.
	t.Logf("soak: %d points, %d rounds, dedup absorbed %d duplicate batches",
		published, rounds, st.DupBatches)

	for _, sp := range probes {
		sp.cancel()
		<-sp.done
		sp.pr.Close()
		sp.bus.Close()
	}
}

// soakDrainTimeout lets a hang investigation (SOAK_HANG=1) run into the
// go test -timeout goroutine dump instead of the test's own deadline.
func soakDrainTimeout() time.Duration {
	if os.Getenv("SOAK_HANG") != "" {
		return 10 * time.Minute
	}
	return 20 * time.Second
}
