package fed

// Native fuzz target for the federation frame decoder — the aggregator
// parses these bytes from any host that can reach its listen port, so the
// decode stack (hello/ack/batch framing, then the dictionary+delta record
// codec) must never panic or over-allocate on arbitrary input, and a batch
// whose CRC fails must never reach the record decoder. Corpus
// regeneration: RURU_UPDATE=1 (see docs/TESTING.md).

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"ruru/internal/tsdb"
)

// fuzzFrameSeeds builds valid payloads of every frame kind plus corrupted
// variants.
func fuzzFrameSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	var enc tsdb.RecordEncoder
	record := enc.AppendRecord(nil, spoolPoints(8, 100))
	batch := appendBatch(nil, 7, record)
	corrupt := append([]byte(nil), batch...)
	corrupt[len(corrupt)-1] ^= 0x01
	shortRec := appendBatch(nil, 8, record[:len(record)/2]) // CRC of a truncated record: valid frame, decoder must cope
	return [][]byte{
		appendHello(nil, "probe-1"),
		appendSeq(nil, 42),
		batch,
		corrupt,
		shortRec,
		record, // raw record bytes (exercises parse* rejections)
	}
}

// FuzzRemoteWriteDecode drives every parser an aggregator applies to
// untrusted bytes, including the record decode behind a passing CRC.
func FuzzRemoteWriteDecode(f *testing.F) {
	for _, s := range fuzzFrameSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if id, err := parseHello(data); err == nil && id == "" {
			t.Fatal("parseHello accepted an empty probe id")
		}
		parseSeq(data)
		seq, record, err := parseBatch(data)
		if err != nil {
			return
		}
		_ = seq
		// CRC passed: the record decoder still must not trust the bytes.
		points := 0
		tsdb.DecodeRecord(record, func(p *tsdb.Point) error {
			points++
			return nil
		})
		if points > len(record) {
			t.Fatalf("decoded %d points from %d record bytes", points, len(record))
		}
	})
}

// TestWriteFedFuzzCorpus regenerates testdata/fuzz/FuzzRemoteWriteDecode.
// Run with RURU_UPDATE=1; skipped otherwise.
func TestWriteFedFuzzCorpus(t *testing.T) {
	if os.Getenv("RURU_UPDATE") == "" {
		t.Skip("set RURU_UPDATE=1 to regenerate the fuzz corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzRemoteWriteDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range fuzzFrameSeeds(t) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, "seed-"+strconv.Itoa(i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
