// Package fed is the multi-probe federation layer: many Ruru probes, each
// tapping its own link, stream their enriched measurements to one central
// aggregator whose TSDB (rollups, WAL durability, query planner) serves the
// whole fleet. This is the probe→collector split large passive-measurement
// deployments use, grown out of the paper's single-tap design.
//
//	probe A ─┐ acked, batched, CRC-framed records
//	probe B ─┼────────────────────────────────────► aggregator
//	probe C ─┘  (mq frames over TCP, both ways)        │
//	                                                   ▼
//	                              WriteBatch → rollups → WAL → /api/query
//	                              every series tagged probe=<id>
//
// Wire protocol. Both directions speak internal/mq frames (uvarint-length
// topic + payload) over one TCP connection:
//
//	probe → aggregator   "fed.hello"  [1B version][uvarint len][probe id]
//	probe → aggregator   "fed.b"      [8B seq][4B CRC-32C][record]
//	aggregator → probe   "fed.ack"    [8B seq]   (cumulative, and the
//	                                  reply to hello: highest applied seq)
//
// The record bytes are the tsdb WAL's dictionary+delta point encoding in
// its self-contained form (tsdb.RecordEncoder): each batch decodes without
// stream context, so a spooled batch can be resent verbatim over any later
// connection.
//
// Delivery contract. Batches carry per-probe sequence numbers assigned
// once, at spool time. The aggregator acks a batch only after
// DB.WriteBatch returns, and applies a batch only if its seq exceeds the
// probe's highest applied seq — so a batch is applied EXACTLY ONCE per
// aggregator lifetime no matter how often the probe resends it, and an
// acked batch is already applied (durably so per the aggregator's fsync
// policy). The probe keeps every unacked batch in a small on-disk spool
// and resends from it after reconnects and crashes; the hello ack tells a
// restarted probe what the aggregator already has, healing a stale spool
// watermark. If probe AND aggregator state are lost in the same instant
// (aggregator restart while acks were in flight), the window between apply
// and ack degrades to at-least-once — the standard two-generals residue.
//
// Backpressure. The probe bounds in-flight state by MaxUnacked batches and
// MaxSpoolBytes on disk; past either bound the collector stops draining
// its bus subscription, measurements shed at the subscription HWM, and the
// loss is visible in ProbeStats (Dropped) and ruru.Stats — never silent.
package fed

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Frame topics of the probe↔aggregator protocol.
const (
	topicHello = "fed.hello"
	topicBatch = "fed.b"
	topicAck   = "fed.ack"
)

const protoVersion = 1

// maxRecordBytes bounds one batch record on the wire; the mq frame layer
// enforces its own 16MiB cap underneath.
const maxRecordBytes = 8 << 20

// maxProbeIDBytes bounds a probe identity: it becomes a tag value on
// every series and a registry key, so an unauthenticated peer must not be
// able to make it arbitrarily large.
const maxProbeIDBytes = 256

// Errors returned by the protocol layer.
var (
	ErrBadFrame = errors.New("fed: malformed frame")
	ErrBadCRC   = errors.New("fed: record CRC mismatch")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendHello encodes the probe's introduction.
func appendHello(buf []byte, id string) []byte {
	buf = append(buf, protoVersion)
	buf = binary.AppendUvarint(buf, uint64(len(id)))
	return append(buf, id...)
}

// parseHello decodes a hello payload.
func parseHello(p []byte) (id string, err error) {
	if len(p) < 2 || p[0] != protoVersion {
		return "", ErrBadFrame
	}
	n, w := binary.Uvarint(p[1:])
	if w <= 0 || uint64(len(p)-1-w) != n || n == 0 || n > maxProbeIDBytes {
		return "", ErrBadFrame
	}
	return string(p[1+w:]), nil
}

// appendSeq encodes an ack payload (also the hello reply).
func appendSeq(buf []byte, seq uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, seq)
}

// parseSeq decodes an ack payload.
func parseSeq(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, ErrBadFrame
	}
	return binary.LittleEndian.Uint64(p), nil
}

// appendBatch frames one spooled record for the wire: sequence number,
// record CRC, record bytes.
func appendBatch(buf []byte, seq uint64, record []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(record, crcTable))
	return append(buf, record...)
}

// parseBatch decodes and CRC-checks one batch payload. The returned record
// aliases p.
func parseBatch(p []byte) (seq uint64, record []byte, err error) {
	if len(p) < 12 || len(p)-12 > maxRecordBytes {
		return 0, nil, ErrBadFrame
	}
	seq = binary.LittleEndian.Uint64(p)
	want := binary.LittleEndian.Uint32(p[8:])
	record = p[12:]
	if crc32.Checksum(record, crcTable) != want {
		return 0, nil, ErrBadCRC
	}
	return seq, record, nil
}
