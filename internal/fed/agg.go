package fed

import (
	"bufio"
	"encoding/binary"
	"errors"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ruru/internal/mq"
	"ruru/internal/tsdb"
)

// AggConfig configures the aggregator endpoint.
type AggConfig struct {
	// Listen is the TCP address probes dial (host:port, port 0 picks one).
	Listen string
	// ProbeTag is the tag key every ingested series is stamped with
	// (default "probe"). Queries filter and group on it like any tag:
	// where=probe:<id>, group_by=probe.
	ProbeTag string
	// MaxProbes caps DISTINCT probe identities (default 1024). The
	// protocol is unauthenticated — deploy the listener on a trusted
	// network — so without a cap any peer could grow the registry, the
	// stats payload and the DB's probe-tag cardinality without bound;
	// hellos introducing an identity beyond the cap are rejected and
	// counted in AggStats.Rejected.
	MaxProbes int
}

// Aggregator accepts remote-write streams from N probes and ingests every
// batch — tagged probe=<id> — through the owning DB's normal
// WriteBatch→rollup→WAL path, so durability and the query planner apply to
// federated data for free. Batches are deduplicated by per-probe sequence
// number and acknowledged only after the write returns: apply-exactly-once,
// ack-after-apply (see the package doc for the full contract).
type Aggregator struct {
	cfg AggConfig
	db  *tsdb.DB
	ln  net.Listener

	mu     sync.Mutex
	probes map[string]*aggProbe
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	batches      atomic.Uint64
	points       atomic.Uint64
	dupBatches   atomic.Uint64
	badFrames    atomic.Uint64
	decodeErrors atomic.Uint64
	writeErrors  atomic.Uint64
	rejected     atomic.Uint64
}

// aggProbe is the per-probe federation state. lastApplied is the dedup
// watermark: a batch applies iff its seq exceeds it, and the cumulative
// ack always reports it. mu serializes apply+advance so two connections
// claiming the same probe id cannot interleave.
type aggProbe struct {
	id string

	mu          sync.Mutex
	lastApplied uint64

	// Ref-path write scratch, guarded by mu (applyBatch holds it through
	// decode and apply): interned TSDB handles cached per decoded
	// (name, tags, field-keys) shape — the probe tag is implicit since the
	// cache itself is per-probe — plus reusable batch buffers, so the
	// steady-state apply path allocates nothing per point.
	refs   map[string]tsdb.SeriesRef
	keyBuf []byte
	rpts   []tsdb.RefPoint
	vals   []float64
	offs   []int

	conns      atomic.Int64
	lastRecvNs atomic.Int64
	batches    atomic.Uint64
	points     atomic.Uint64
	dupBatches atomic.Uint64
}

// ProbeAggStats is one probe's view in AggStats.
type ProbeAggStats struct {
	ID string
	// Connected reports a live connection; Conns the exact count (a
	// restarting probe can briefly hold two).
	Connected bool
	Conns     int64
	// LastSeq is the highest applied (= acked) sequence number.
	LastSeq uint64
	// Batches/Points count applied work; DupBatches counts resends the
	// dedup discarded (at-least-once retries that exactly-once absorbed).
	Batches, Points, DupBatches uint64
	// LagNs is the time since the last frame from this probe (-1 before
	// the first one) — the liveness/lag signal.
	LagNs int64
}

// AggStats snapshots the aggregator: totals plus per-probe liveness, lag
// and dedup counters, sorted by probe id.
type AggStats struct {
	Enabled bool   `json:",omitempty"`
	Addr    string `json:",omitempty"`
	// Batches/Points count work accepted and written through the DB (a
	// point behind the retention horizon is accepted here and surfaces in
	// the stats' top-level DBDropped, not in any fed counter); DupBatches
	// counts batches dropped by sequence dedup; BadFrames malformed or
	// CRC-failing frames (connection dropped, probe resends); DecodeErrors
	// CRC-valid records — or individual fieldless points — that could not
	// become writable points (counted, skipped and acked: resending cannot
	// fix them); WriteErrors batches refused by a closing DB; Rejected
	// hellos refused at the MaxProbes distinct-identity cap.
	Batches, Points, DupBatches, BadFrames, DecodeErrors, WriteErrors, Rejected uint64
	Probes                                                                      []ProbeAggStats
}

// NewAggregator binds the listener and starts accepting probes. The
// returned Aggregator serves until Close.
func NewAggregator(cfg AggConfig, db *tsdb.DB) (*Aggregator, error) {
	if cfg.Listen == "" {
		return nil, errors.New("fed: AggConfig.Listen is required")
	}
	if cfg.ProbeTag == "" {
		cfg.ProbeTag = "probe"
	}
	if cfg.MaxProbes <= 0 {
		cfg.MaxProbes = 1024
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	a := &Aggregator{cfg: cfg, db: db, ln: ln,
		probes: make(map[string]*aggProbe), conns: make(map[net.Conn]struct{})}
	a.wg.Add(1)
	go a.acceptLoop()
	return a, nil
}

// Addr returns the bound listen address.
func (a *Aggregator) Addr() net.Addr { return a.ln.Addr() }

func (a *Aggregator) acceptLoop() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return
		}
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			conn.Close()
			return
		}
		a.conns[conn] = struct{}{}
		a.mu.Unlock()
		a.wg.Add(1)
		go a.serve(conn)
	}
}

// probeFor returns (and on first sight registers) the probe's state, or
// nil when registering would exceed the MaxProbes identity cap.
func (a *Aggregator) probeFor(id string) *aggProbe {
	a.mu.Lock()
	defer a.mu.Unlock()
	ps := a.probes[id]
	if ps == nil {
		if len(a.probes) >= a.cfg.MaxProbes {
			return nil
		}
		ps = &aggProbe{id: id, refs: make(map[string]tsdb.SeriesRef)}
		ps.lastRecvNs.Store(-1)
		a.probes[id] = ps
	}
	return ps
}

// serve runs one probe connection: hello → ack(lastApplied) → batch/ack
// stream. Any protocol violation drops the connection; the probe's spool
// replay makes that safe.
func (a *Aggregator) serve(conn net.Conn) {
	defer a.wg.Done()
	defer func() {
		a.mu.Lock()
		delete(a.conns, conn)
		a.mu.Unlock()
		conn.Close()
	}()
	// Buffer the read side: frame headers are decoded byte-at-a-time, and
	// on the raw conn each uvarint byte would be its own read(2). One
	// reader per conn, so buffering is safe.
	fr := mq.NewFrameReader(bufio.NewReaderSize(conn, 32<<10))
	conn.SetReadDeadline(time.Now().Add(15 * time.Second))
	msg, err := fr.Read()
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		return // peer hung up before introducing itself: not a protocol error
	}
	if msg.Topic != topicHello {
		a.badFrames.Add(1)
		return
	}
	id, err := parseHello(msg.Payload)
	if err != nil {
		a.badFrames.Add(1)
		return
	}
	ps := a.probeFor(id)
	if ps == nil {
		a.rejected.Add(1)
		return
	}
	ps.conns.Add(1)
	defer ps.conns.Add(-1)

	ps.mu.Lock()
	last := ps.lastApplied
	ps.mu.Unlock()
	if err := mq.WriteFrame(conn, mq.Message{Topic: topicAck,
		Payload: appendSeq(nil, last)}); err != nil {
		return
	}

	var ackBuf []byte
	pts := make([]tsdb.Point, 0, 256)
	for {
		msg, err := fr.Read()
		if err != nil {
			return
		}
		ps.lastRecvNs.Store(time.Now().UnixNano())
		if msg.Topic != topicBatch {
			continue // future protocol extensions are ignorable
		}
		seq, record, err := parseBatch(msg.Payload)
		if err != nil {
			// A framing/CRC failure poisons the stream position: drop the
			// connection and let spool replay retransmit cleanly.
			a.badFrames.Add(1)
			return
		}
		ack, ok := a.applyBatch(ps, seq, record, &pts)
		if !ok {
			return
		}
		ackBuf = appendSeq(ackBuf[:0], ack)
		if err := mq.WriteFrame(conn, mq.Message{Topic: topicAck, Payload: ackBuf}); err != nil {
			return
		}
	}
}

// applyBatch applies one batch exactly once and returns the cumulative ack
// to send. ok=false means the DB refused the write (shutdown): drop the
// connection without acking so the probe retains and resends the batch.
func (a *Aggregator) applyBatch(ps *aggProbe, seq uint64, record []byte, pts *[]tsdb.Point) (ack uint64, ok bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if seq <= ps.lastApplied {
		ps.dupBatches.Add(1)
		a.dupBatches.Add(1)
		return ps.lastApplied, true
	}
	batch := (*pts)[:0]
	rpts := ps.rpts[:0]
	vals := ps.vals[:0]
	offs := ps.offs[:0]
	dropped := 0
	derr := tsdb.DecodeRecord(record, func(p *tsdb.Point) error {
		if len(p.Fields) == 0 {
			// A fieldless point (craftable on the wire, never produced by
			// a real probe) would fail the WHOLE WriteBatch with the
			// deterministic ErrNoFields — and since that error is handled
			// as transient (no ack, resend), it would livelock the stream.
			// Drop and count it here instead.
			dropped++
			return nil
		}
		if ref, ok := a.refFor(ps, p); ok {
			// Interned fast path: values into the shared arena, Vals
			// subslices fixed up below once the arena stops moving.
			offs = append(offs, len(vals))
			for _, f := range p.Fields {
				vals = append(vals, f.Value)
			}
			rpts = append(rpts, tsdb.RefPoint{Ref: ref, Time: p.Time})
			return nil
		}
		// Shapes Ref refuses (duplicate field keys) take the legacy copy
		// path, preserving the old behaviour exactly.
		q := tsdb.Point{
			Name:   p.Name,
			Tags:   make([]tsdb.Tag, 0, len(p.Tags)+1),
			Fields: append([]tsdb.Field(nil), p.Fields...),
			Time:   p.Time,
		}
		q.Tags = append(append(q.Tags, p.Tags...), tsdb.Tag{Key: a.cfg.ProbeTag, Value: ps.id})
		batch = append(batch, q)
		return nil
	})
	offs = append(offs, len(vals))
	for i := range rpts {
		rpts[i].Vals = vals[offs[i]:offs[i+1]:offs[i+1]]
	}
	if dropped > 0 {
		a.decodeErrors.Add(uint64(dropped))
	}
	*pts = batch[:0]
	ps.rpts, ps.vals, ps.offs = rpts, vals, offs
	if derr != nil {
		// CRC said the bytes arrived intact, so this is an encoding the
		// probe will resend identically forever: count it, skip it, ack it
		// — a visible loss beats a retry livelock.
		a.decodeErrors.Add(1)
		ps.lastApplied = seq
		return seq, true
	}
	// Both writes can only fail with ErrClosedDB (shutdown; fieldless
	// points were filtered above): transient, so drop the connection
	// without acking and let the probe resend to the restarted aggregator.
	// With err == nil every point was handled — stored, or dropped by
	// retention and counted in the DB's own dropped counter (surfaced as
	// DBDropped in /api/stats), so Points below means "accepted", not
	// "queryable".
	if len(rpts) > 0 {
		if _, err := a.db.WriteBatchRef(rpts); err != nil {
			a.writeErrors.Add(1)
			return 0, false
		}
	}
	if len(batch) > 0 {
		if _, err := a.db.WriteBatch(batch); err != nil {
			a.writeErrors.Add(1)
			return 0, false
		}
	}
	n := uint64(len(rpts) + len(batch))
	ps.lastApplied = seq
	ps.batches.Add(1)
	a.batches.Add(1)
	ps.points.Add(n)
	a.points.Add(n)
	return seq, true
}

// refFor resolves a decoded point's interned TSDB handle from the probe's
// cache, creating it on first sight of the shape. ok=false means the shape
// cannot take the ref path (duplicate field keys, or the DB is closing —
// in which case the legacy write will surface the error). Caller holds
// ps.mu.
func (a *Aggregator) refFor(ps *aggProbe, p *tsdb.Point) (tsdb.SeriesRef, bool) {
	// Cache key: name, tag count, tags, field keys — all length-prefixed,
	// so distinct shapes can never collide.
	b := ps.keyBuf[:0]
	b = appendLenStr(b, p.Name)
	b = binary.AppendUvarint(b, uint64(len(p.Tags)))
	for _, t := range p.Tags {
		b = appendLenStr(b, t.Key)
		b = appendLenStr(b, t.Value)
	}
	for _, f := range p.Fields {
		b = appendLenStr(b, f.Key)
	}
	ps.keyBuf = b
	if ref, ok := ps.refs[string(b)]; ok {
		return ref, true
	}
	tags := make([]tsdb.Tag, 0, len(p.Tags)+1)
	tags = append(append(tags, p.Tags...), tsdb.Tag{Key: a.cfg.ProbeTag, Value: ps.id})
	fields := make([]string, len(p.Fields))
	for i, f := range p.Fields {
		fields[i] = f.Key
	}
	ref, err := a.db.Ref(p.Name, tags, fields...)
	if err != nil {
		return 0, false
	}
	ps.refs[string(b)] = ref
	return ref, true
}

func appendLenStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Stats snapshots the aggregator counters.
func (a *Aggregator) Stats() AggStats {
	st := AggStats{
		Enabled:      true,
		Addr:         a.ln.Addr().String(),
		Batches:      a.batches.Load(),
		Points:       a.points.Load(),
		DupBatches:   a.dupBatches.Load(),
		BadFrames:    a.badFrames.Load(),
		DecodeErrors: a.decodeErrors.Load(),
		WriteErrors:  a.writeErrors.Load(),
		Rejected:     a.rejected.Load(),
	}
	now := time.Now().UnixNano()
	// Snapshot the registry under a.mu, then read per-probe state lock by
	// lock: ps.mu must never be taken while holding a.mu (the documented
	// non-nesting invariant), and a probe mid-WriteBatch must not stall a
	// stats scrape of the whole fleet.
	a.mu.Lock()
	probes := make([]*aggProbe, 0, len(a.probes))
	for _, ps := range a.probes {
		probes = append(probes, ps)
	}
	a.mu.Unlock()
	for _, ps := range probes {
		ps.mu.Lock()
		last := ps.lastApplied
		ps.mu.Unlock()
		lag := int64(-1)
		if recv := ps.lastRecvNs.Load(); recv > 0 {
			lag = now - recv
		}
		conns := ps.conns.Load()
		st.Probes = append(st.Probes, ProbeAggStats{
			ID:         ps.id,
			Connected:  conns > 0,
			Conns:      conns,
			LastSeq:    last,
			Batches:    ps.batches.Load(),
			Points:     ps.points.Load(),
			DupBatches: ps.dupBatches.Load(),
			LagNs:      lag,
		})
	}
	sort.Slice(st.Probes, func(i, j int) bool { return st.Probes[i].ID < st.Probes[j].ID })
	return st
}

// DropConnections severs every live probe connection (they reconnect and
// replay) — the fault-injection hook the recovery experiment and soak test
// drive; harmless in production.
func (a *Aggregator) DropConnections() {
	a.mu.Lock()
	for c := range a.conns {
		c.Close()
	}
	a.mu.Unlock()
}

// Close stops accepting, drops live connections and waits for the serving
// goroutines. The DB is not closed (the aggregator does not own it).
func (a *Aggregator) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	err := a.ln.Close()
	for c := range a.conns {
		c.Close()
	}
	a.mu.Unlock()
	a.wg.Wait()
	return err
}
