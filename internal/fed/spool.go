package fed

// The probe's on-disk spool: every batch is appended here, with its
// sequence number, before it is eligible to be sent — so a probe that
// crashes (kill -9 included) reloads its unacked batches on restart and
// resends them, and an acked batch can be forgotten everywhere.
//
// Layout under the spool directory:
//
//	00000001.sp ...   segment files: 8B magic, then records of
//	                  [8B seq][4B len][4B CRC-32C][record]
//	ACKED             highest acked seq, written atomically (tmp+rename),
//	                  throttled — it may lag the true ack watermark, which
//	                  is safe: resending an acked batch is a no-op at the
//	                  aggregator's dedup, and the hello ack re-syncs the
//	                  probe on connect.
//
// Appends go straight to the file descriptor (no userspace buffering), so
// a process crash loses at most the record being written — which was never
// acked. No fsync: the spool protects against process death, not power
// loss; the aggregator's WAL owns power-loss durability once a batch is
// acked. A torn record tail (crash mid-append) is detected by length/CRC
// and tolerated at the end of any segment, counted in tornTails.
//
// The spool is not safe for concurrent use; the Probe serializes access
// under its own mutex.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	spoolMagic      = "RUSP0001"
	spoolSuffix     = ".sp"
	spoolFrameBytes = 16 // 8B seq + 4B len + 4B CRC
	ackedName       = "ACKED"
	// ackPersistEvery throttles ACKED rewrites: persist when the watermark
	// has advanced this many batches past the persisted value (and always
	// on segment pruning and Close).
	ackPersistEvery = 32
	defaultSpoolSeg = 4 << 20
)

// spoolRec is one spooled, not-yet-acked batch held in memory for sending.
type spoolRec struct {
	seq     uint64
	payload []byte // self-contained record encoding (no frame header)
	sent    bool   // sent at least once on some connection
}

type spoolSeg struct {
	idx    uint64
	maxSeq uint64
	bytes  int64
}

type spool struct {
	dir    string
	maxSeg int64

	f        *os.File
	segs     []spoolSeg // ascending; last is the open segment
	bytes    int64      // sum of segs[].bytes
	nextSeq  uint64     // next sequence number to assign
	acked    uint64     // in-memory ack watermark
	persIdx  uint64     // acked value last written to ACKED
	tornTail uint64     // torn/corrupt tails tolerated during open
	// poisoned marks the open segment's tail as possibly mid-frame (an
	// append's Write failed partway): the next append must rotate onto a
	// fresh segment first, because the crash scanner stops at the first
	// bad frame — records appended after a torn one in the SAME segment
	// would be silently unrecoverable. Same discipline as the WAL writer.
	poisoned bool
}

func spoolSegName(idx uint64) string {
	return fmt.Sprintf("%08d%s", idx, spoolSuffix)
}

// openSpool loads dir, returning the spool armed on a fresh segment plus
// every record not yet covered by the persisted ack watermark, in sequence
// order.
func openSpool(dir string, maxSeg int64) (*spool, []spoolRec, error) {
	if maxSeg <= 0 {
		maxSeg = defaultSpoolSeg
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	s := &spool{dir: dir, maxSeg: maxSeg, nextSeq: 1}
	if b, err := os.ReadFile(filepath.Join(dir, ackedName)); err == nil {
		if n, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64); err == nil {
			s.acked, s.persIdx = n, n
			if n+1 > s.nextSeq {
				s.nextSeq = n + 1
			}
		}
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var idxs []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, spoolSuffix) {
			continue
		}
		if n, err := strconv.ParseUint(strings.TrimSuffix(name, spoolSuffix), 10, 64); err == nil {
			idxs = append(idxs, n)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })

	var pending []spoolRec
	for _, idx := range idxs {
		path := filepath.Join(dir, spoolSegName(idx))
		seg, recs, torn, err := scanSpoolSegment(path)
		if err != nil {
			return nil, nil, err
		}
		s.tornTail += torn
		seg.idx = idx
		if seg.maxSeq <= s.acked && seg.maxSeq > 0 || seg.bytes <= int64(len(spoolMagic)) {
			// Fully acked (or empty): reclaim now.
			os.Remove(path)
		} else {
			s.segs = append(s.segs, seg)
			s.bytes += seg.bytes
		}
		for _, r := range recs {
			if r.seq > s.acked {
				pending = append(pending, r)
			}
			if r.seq+1 > s.nextSeq {
				s.nextSeq = r.seq + 1
			}
		}
	}
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].seq < pending[j].seq })

	// Arm a fresh segment after everything on disk: a possibly-torn old
	// tail is never appended to.
	first := uint64(1)
	if len(idxs) > 0 {
		first = idxs[len(idxs)-1] + 1
	}
	if err := s.openSegment(first); err != nil {
		return nil, nil, err
	}
	return s, pending, nil
}

// scanSpoolSegment reads one segment's records. A bad magic, short frame
// or CRC mismatch ends the scan (torn=1): only the tail of a segment can
// be torn, because appends are sequential and rotation happens between
// records.
func scanSpoolSegment(path string) (seg spoolSeg, recs []spoolRec, torn uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return seg, nil, 0, err
	}
	defer f.Close()
	var magic [len(spoolMagic)]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || string(magic[:]) != spoolMagic {
		return seg, nil, 1, nil
	}
	seg.bytes = int64(len(spoolMagic))
	var hdr [spoolFrameBytes]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err != io.EOF {
				torn++
			}
			return seg, recs, torn, nil
		}
		seq := binary.LittleEndian.Uint64(hdr[0:8])
		length := binary.LittleEndian.Uint32(hdr[8:12])
		want := binary.LittleEndian.Uint32(hdr[12:16])
		if int64(length) > maxRecordBytes {
			return seg, recs, torn + 1, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return seg, recs, torn + 1, nil
		}
		if crc32.Checksum(payload, crcTable) != want {
			return seg, recs, torn + 1, nil
		}
		recs = append(recs, spoolRec{seq: seq, payload: payload})
		if seq > seg.maxSeq {
			seg.maxSeq = seq
		}
		seg.bytes += spoolFrameBytes + int64(length)
	}
}

func (s *spool) openSegment(idx uint64) error {
	f, err := os.OpenFile(filepath.Join(s.dir, spoolSegName(idx)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(spoolMagic); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	s.f = f
	s.segs = append(s.segs, spoolSeg{idx: idx, bytes: int64(len(spoolMagic))})
	s.bytes += int64(len(spoolMagic))
	return nil
}

// cur returns the open segment's bookkeeping entry.
func (s *spool) cur() *spoolSeg { return &s.segs[len(s.segs)-1] }

// append frames and writes one record, rotating first when the open
// segment is full. One Write call per record: a crash can tear only the
// record being written.
func (s *spool) append(seq uint64, record []byte) error {
	need := int64(spoolFrameBytes + len(record))
	if c := s.cur(); s.poisoned || (c.bytes+need > s.maxSeg && c.bytes > int64(len(spoolMagic))) {
		if err := s.rotate(); err != nil {
			return err
		}
		s.poisoned = false
	}
	buf := make([]byte, spoolFrameBytes, spoolFrameBytes+len(record))
	binary.LittleEndian.PutUint64(buf[0:8], seq)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(record)))
	binary.LittleEndian.PutUint32(buf[12:16], crc32.Checksum(record, crcTable))
	buf = append(buf, record...)
	if _, err := s.f.Write(buf); err != nil {
		// The tail may now hold a partial frame: poison so the next append
		// rotates instead of burying good records behind the tear.
		s.poisoned = true
		return err
	}
	c := s.cur()
	c.bytes += need
	s.bytes += need
	if seq > c.maxSeq {
		c.maxSeq = seq
	}
	if seq+1 > s.nextSeq {
		s.nextSeq = seq + 1
	}
	return nil
}

func (s *spool) rotate() error {
	next := s.cur().idx + 1
	s.f.Close()
	return s.openSegment(next)
}

// ack advances the watermark, deletes fully-acked closed segments and
// persists ACKED (throttled).
func (s *spool) ack(seq uint64) {
	if seq <= s.acked {
		return
	}
	s.acked = seq
	pruned := false
	for len(s.segs) > 1 { // never delete the open segment
		seg := s.segs[0]
		if seg.maxSeq > seq {
			break
		}
		os.Remove(filepath.Join(s.dir, spoolSegName(seg.idx)))
		s.bytes -= seg.bytes
		s.segs = s.segs[1:]
		pruned = true
	}
	if pruned || s.acked-s.persIdx >= ackPersistEvery {
		s.persistAcked()
	}
}

// persistAcked writes the watermark atomically. Failure is tolerated
// (stale ACKED only causes redundant, deduplicated resends).
func (s *spool) persistAcked() {
	tmp := filepath.Join(s.dir, ackedName+".tmp")
	if err := os.WriteFile(tmp, []byte(strconv.FormatUint(s.acked, 10)+"\n"), 0o644); err != nil {
		return
	}
	if os.Rename(tmp, filepath.Join(s.dir, ackedName)) == nil {
		s.persIdx = s.acked
	}
}

func (s *spool) close() error {
	s.persistAcked()
	return s.f.Close()
}
