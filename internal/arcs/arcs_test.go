package arcs

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ruru/internal/geo"
)

func TestGreatCircleEndpoints(t *testing.T) {
	akl := Point{-36.85, 174.76}
	lax := Point{34.05, -118.24}
	pts := GreatCircle(akl, lax, 16)
	if len(pts) != 17 {
		t.Fatalf("%d points", len(pts))
	}
	if math.Abs(pts[0].Lat-akl.Lat) > 1e-6 || math.Abs(pts[0].Lon-akl.Lon) > 1e-6 {
		t.Fatalf("start = %+v", pts[0])
	}
	if math.Abs(pts[16].Lat-lax.Lat) > 1e-6 || math.Abs(pts[16].Lon-lax.Lon) > 1e-6 {
		t.Fatalf("end = %+v", pts[16])
	}
}

func TestGreatCirclePathLength(t *testing.T) {
	// The polyline length must approximate the great-circle distance
	// (within 1% for 32 segments).
	akl := Point{-36.85, 174.76}
	lax := Point{34.05, -118.24}
	pts := GreatCircle(akl, lax, 32)
	var total float64
	for i := 0; i < len(pts)-1; i++ {
		total += geo.Haversine(pts[i].Lat, pts[i].Lon, pts[i+1].Lat, pts[i+1].Lon)
	}
	direct := geo.Haversine(akl.Lat, akl.Lon, lax.Lat, lax.Lon)
	if math.Abs(total-direct) > 0.01*direct {
		t.Fatalf("polyline %.0f km vs direct %.0f km", total, direct)
	}
}

func TestGreatCircleMidpointProperty(t *testing.T) {
	// The midpoint must be equidistant from both endpoints.
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		norm := func(v, bound float64) float64 {
			v = math.Mod(v, bound)
			if math.IsNaN(v) {
				return 0
			}
			return v
		}
		a := Point{norm(lat1, 89), norm(lon1, 179)}
		b := Point{norm(lat2, 89), norm(lon2, 179)}
		d := geo.Haversine(a.Lat, a.Lon, b.Lat, b.Lon)
		if d < 100 { // degenerate/coincident
			return true
		}
		pts := GreatCircle(a, b, 2)
		mid := pts[1]
		d1 := geo.Haversine(a.Lat, a.Lon, mid.Lat, mid.Lon)
		d2 := geo.Haversine(mid.Lat, mid.Lon, b.Lat, b.Lon)
		return math.Abs(d1-d2) < 0.02*d+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGreatCircleCoincident(t *testing.T) {
	p := Point{10, 20}
	pts := GreatCircle(p, p, 4)
	for _, q := range pts {
		if q != p {
			t.Fatalf("coincident arc wandered: %+v", q)
		}
	}
}

func TestColorScale(t *testing.T) {
	s := ColorScale{GoodNs: 50e6, BadNs: 500e6}
	if c := s.Color(10e6); c.G < 150 || c.R > 50 {
		t.Fatalf("fast color = %+v, want green", c)
	}
	if c := s.Color(1000e6); c.R != 230 || c.G != 0 {
		t.Fatalf("slow color = %+v, want red", c)
	}
	mid := s.Color(275e6)
	if mid.R < 150 || mid.G < 100 {
		t.Fatalf("mid color = %+v, want yellowish", mid)
	}
	// Monotonicity of redness.
	prevR := -1
	for ns := int64(0); ns <= 600e6; ns += 50e6 {
		c := s.Color(ns)
		if int(c.R) < prevR {
			t.Fatalf("red not monotone at %d", ns)
		}
		prevR = int(c.R)
	}
	// Classes.
	if s.Class(10e6) != 0 || s.Class(490e6) != 1 || s.Class(900e6) != 2 {
		t.Fatalf("classes: %d %d %d", s.Class(10e6), s.Class(490e6), s.Class(900e6))
	}
	// Degenerate scale must not divide by zero.
	bad := ColorScale{GoodNs: 100, BadNs: 100}
	_ = bad.Color(50)
}

func TestRendererShowsRedAmongGreen(t *testing.T) {
	// The §3 operator workflow: one slow arc must be visible (as '#')
	// among fast ('.') arcs.
	r := NewRenderer(120, 40)
	arcsIn := []Arc{
		{From: Point{-36.85, 174.76}, To: Point{34.05, -118.24}, LatencyNs: 130e6},
		{From: Point{-36.85, 174.76}, To: Point{35.68, 139.69}, LatencyNs: 4000e6}, // the glitch
	}
	lines := r.Render(arcsIn)
	frame := Frame(lines)
	if !strings.Contains(frame, "#") {
		t.Fatal("anomalous arc not rendered as '#'")
	}
	if !strings.Contains(frame, ".") && !strings.Contains(frame, "o") {
		t.Fatal("normal arc not rendered")
	}
	if !strings.Contains(frame, "@") {
		t.Fatal("endpoints not marked")
	}
	if len(lines) != 40 {
		t.Fatalf("%d lines", len(lines))
	}
	for i, l := range lines {
		if len(l) != 120 {
			t.Fatalf("line %d width %d", i, len(l))
		}
	}
}

func TestRendererArcBudget(t *testing.T) {
	r := NewRenderer(80, 24)
	r.MaxArcs = 1
	many := make([]Arc, 100)
	for i := range many {
		many[i] = Arc{From: Point{0, float64(i)}, To: Point{10, float64(i) + 5}, LatencyNs: 4000e6}
	}
	// Only verifying it doesn't blow up and renders something bounded.
	lines := r.Render(many)
	if len(lines) != 24 {
		t.Fatal("bad frame")
	}
}

func TestRendererSeverityPrecedence(t *testing.T) {
	// A red arc crossing a green arc must win at intersections.
	r := NewRenderer(41, 21)
	cross := []Arc{
		{From: Point{0, -20}, To: Point{0, 20}, LatencyNs: 1e6},    // green horizontal
		{From: Point{-20, 0}, To: Point{20, 0}, LatencyNs: 4000e6}, // red vertical
	}
	lines := r.Render(cross)
	// The crossing is near the grid center.
	found := false
	for _, l := range lines {
		if strings.Contains(l, "#") {
			found = true
		}
	}
	if !found {
		t.Fatal("red arc invisible")
	}
}

func TestProjectClamps(t *testing.T) {
	r := NewRenderer(100, 50)
	for _, p := range []Point{{91, 0}, {-91, 0}, {0, 181}, {0, -181}, {90, 180}, {-90, -180}} {
		x, y := r.project(p)
		if x < 0 || x >= r.W || y < 0 || y >= r.H {
			t.Fatalf("project(%+v) = %d,%d out of grid", p, x, y)
		}
	}
}

func TestLegendMentionsThresholds(t *testing.T) {
	r := NewRenderer(80, 24)
	if !strings.Contains(r.Legend(), "500") {
		t.Fatalf("legend = %q", r.Legend())
	}
}

func BenchmarkGreatCircle(b *testing.B) {
	akl := Point{-36.85, 174.76}
	lax := Point{34.05, -118.24}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GreatCircle(akl, lax, 24)
	}
}

func BenchmarkRender1000Arcs(b *testing.B) {
	r := NewRenderer(160, 50)
	arcsIn := make([]Arc, 1000)
	for i := range arcsIn {
		arcsIn[i] = Arc{
			From:      Point{float64(i%120 - 60), float64(i%300 - 150)},
			To:        Point{float64((i*7)%120 - 60), float64((i*13)%300 - 150)},
			LatencyNs: int64(i) * 1e6,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Render(arcsIn)
	}
}
