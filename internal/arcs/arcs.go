// Package arcs computes the geometry and colors of the connection arcs that
// Ruru's WebGL map draws (paper §2: "multiple thousands of 3D arcs drawn on
// a map with 30 fps"). The GL draw itself needs a browser; everything up to
// the draw call lives here: great-circle interpolation (the polyline each
// arc follows), a latency→color scale (the paper's §3 "red lines in areas
// where most lines are green show increased latency"), a per-frame arc
// budget, and an ASCII world-map renderer that makes the live-map use case
// reproducible in a terminal and in CI.
package arcs

import (
	"fmt"
	"math"
	"strings"
)

// Point is a geographic coordinate in degrees.
type Point struct {
	Lat, Lon float64
}

// Arc is one connection to draw.
type Arc struct {
	From, To Point
	// LatencyNs colors the arc.
	LatencyNs int64
}

// GreatCircle returns n+1 points interpolated along the great circle from a
// to b (slerp on the unit sphere). n must be ≥ 1. Antipodal endpoints take
// an arbitrary (but deterministic) meridian.
func GreatCircle(a, b Point, n int) []Point {
	if n < 1 {
		n = 1
	}
	ax, ay, az := toCartesian(a)
	bx, by, bz := toCartesian(b)
	dot := ax*bx + ay*by + az*bz
	if dot > 1 {
		dot = 1
	}
	if dot < -1 {
		dot = -1
	}
	omega := math.Acos(dot)
	out := make([]Point, n+1)
	if omega < 1e-9 { // coincident
		for i := range out {
			out[i] = a
		}
		return out
	}
	sin := math.Sin(omega)
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		var w1, w2 float64
		if sin < 1e-9 { // antipodal: fall back to linear blend via pole
			w1, w2 = 1-t, t
		} else {
			w1 = math.Sin((1-t)*omega) / sin
			w2 = math.Sin(t*omega) / sin
		}
		x := w1*ax + w2*bx
		y := w1*ay + w2*by
		z := w1*az + w2*bz
		out[i] = fromCartesian(x, y, z)
	}
	return out
}

func toCartesian(p Point) (x, y, z float64) {
	lat := p.Lat * math.Pi / 180
	lon := p.Lon * math.Pi / 180
	return math.Cos(lat) * math.Cos(lon), math.Cos(lat) * math.Sin(lon), math.Sin(lat)
}

func fromCartesian(x, y, z float64) Point {
	r := math.Sqrt(x*x + y*y + z*z)
	if r == 0 {
		return Point{}
	}
	return Point{
		Lat: math.Asin(z/r) * 180 / math.Pi,
		Lon: math.Atan2(y, x) * 180 / math.Pi,
	}
}

// Color is an sRGB triple.
type Color struct{ R, G, B uint8 }

// ColorScale maps latency to the green→yellow→red ramp the live map uses.
// GoodNs and BadNs bound the ramp: at or below GoodNs the arc is pure
// green, at or above BadNs pure red.
type ColorScale struct {
	GoodNs, BadNs int64
}

// DefaultScale matches an intercontinental link: 50 ms green, 500 ms red.
var DefaultScale = ColorScale{GoodNs: 50e6, BadNs: 500e6}

// Color maps a latency to the ramp.
func (s ColorScale) Color(latencyNs int64) Color {
	good, bad := s.GoodNs, s.BadNs
	if bad <= good {
		bad = good + 1
	}
	t := float64(latencyNs-good) / float64(bad-good)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	// green (0,200,0) → yellow (230,230,0) → red (230,0,0)
	if t < 0.5 {
		u := t * 2
		return Color{R: uint8(230 * u), G: uint8(200 + 30*u), B: 0}
	}
	u := (t - 0.5) * 2
	return Color{R: 230, G: uint8(230 * (1 - u)), B: 0}
}

// Class buckets a latency for the terminal renderer: 0 good (below the ramp
// midpoint), 1 degraded (upper half of the ramp), 2 bad (at or past BadNs).
func (s ColorScale) Class(latencyNs int64) int {
	good, bad := s.GoodNs, s.BadNs
	if bad <= good {
		bad = good + 1
	}
	t := float64(latencyNs-good) / float64(bad-good)
	switch {
	case t >= 1:
		return 2
	case t >= 0.5:
		return 1
	default:
		return 0
	}
}

// Renderer draws arcs on an equirectangular ASCII map.
type Renderer struct {
	W, H  int
	Scale ColorScale
	// MaxArcs bounds the arcs drawn per frame (the GL budget).
	MaxArcs int
}

// NewRenderer returns a renderer with the given character grid size.
func NewRenderer(w, h int) *Renderer {
	if w < 10 {
		w = 10
	}
	if h < 5 {
		h = 5
	}
	return &Renderer{W: w, H: h, Scale: DefaultScale, MaxArcs: 2000}
}

func (r *Renderer) project(p Point) (int, int) {
	x := int((p.Lon + 180) / 360 * float64(r.W-1))
	y := int((90 - p.Lat) / 180 * float64(r.H-1))
	if x < 0 {
		x = 0
	}
	if x >= r.W {
		x = r.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= r.H {
		y = r.H - 1
	}
	return x, y
}

var classGlyph = [3]byte{'.', 'o', '#'}

// Render draws the arcs and returns the frame as lines of text. Higher
// severity classes overwrite lower ones, so a red ('#') segment always shows
// through — the operator's "red lines among green" signal.
func (r *Renderer) Render(arcs []Arc) []string {
	grid := make([][]byte, r.H)
	sev := make([][]int8, r.H)
	for i := range grid {
		grid[i] = bytes(' ', r.W)
		sev[i] = make([]int8, r.W)
		for j := range sev[i] {
			sev[i][j] = -1
		}
	}
	n := len(arcs)
	if r.MaxArcs > 0 && n > r.MaxArcs {
		n = r.MaxArcs
	}
	for _, a := range arcs[:n] {
		class := int8(r.Scale.Class(a.LatencyNs))
		steps := 24
		pts := GreatCircle(a.From, a.To, steps)
		for i := 0; i < len(pts)-1; i++ {
			// Skip segments that wrap around the map edge.
			if math.Abs(pts[i].Lon-pts[i+1].Lon) > 180 {
				continue
			}
			x0, y0 := r.project(pts[i])
			x1, y1 := r.project(pts[i+1])
			drawLine(grid, sev, x0, y0, x1, y1, class)
		}
		// Endpoints always marked.
		for _, p := range []Point{a.From, a.To} {
			x, y := r.project(p)
			grid[y][x] = '@'
			sev[y][x] = 3
		}
	}
	out := make([]string, r.H)
	for i := range grid {
		out[i] = string(grid[i])
	}
	return out
}

func bytes(b byte, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = b
	}
	return s
}

// drawLine rasterizes with Bresenham, honoring severity precedence.
func drawLine(grid [][]byte, sev [][]int8, x0, y0, x1, y1 int, class int8) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		if sev[y0][x0] < class {
			sev[y0][x0] = class
			grid[y0][x0] = classGlyph[class]
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// Legend returns a one-line legend for the renderer output.
func (r *Renderer) Legend() string {
	return fmt.Sprintf(". <%dms   o <%dms   # >=%dms   @ endpoint",
		r.Scale.GoodNs/1e6+(r.Scale.BadNs-r.Scale.GoodNs)/2e6,
		r.Scale.BadNs/1e6, r.Scale.BadNs/1e6)
}

// Frame joins rendered lines for printing.
func Frame(lines []string) string { return strings.Join(lines, "\n") }
