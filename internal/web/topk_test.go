package web

import (
	"net/http"
	"net/http/httptest"
	"net/netip"
	"testing"

	"ruru/internal/geo"
	"ruru/internal/pkt"
	"ruru/internal/ruru"
)

// newSketchServer builds a pipeline with the bounded-memory tier enabled
// (a generous cap) and serves it, without running the engine: tests drive
// the tiers directly through the exported Sketch handles.
func newSketchServer(t *testing.T) (*ruru.Pipeline, *httptest.Server) {
	t.Helper()
	w, err := geo.NewWorld(geo.WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ruru.New(ruru.Config{GeoDB: w.DB(), FlowTableBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(p))
	t.Cleanup(func() { srv.Close(); p.Close() })
	return p, srv
}

func topkSummary(hostA byte, sp uint16, totalLen uint16) *pkt.Summary {
	s := &pkt.Summary{}
	s.IP4.Src = netip.AddrFrom4([4]byte{10, 0, 0, hostA})
	s.IP4.Dst = netip.AddrFrom4([4]byte{192, 0, 2, 1})
	s.IP4.TotalLen = totalLen
	s.Decoded = pkt.LayerEthernet | pkt.LayerIPv4 | pkt.LayerTCP
	s.TCP = pkt.TCP{SrcPort: sp, DstPort: 443, Flags: pkt.TCPAck, Seq: 1, Ack: 1}
	return s
}

type topkResp struct {
	Key   string `json:"key"`
	Items []struct {
		Key   string `json:"key"`
		Count uint64 `json:"count"`
		Err   uint64 `json:"err"`
		Lat   *struct {
			Count uint64  `json:"count"`
			Mean  float64 `json:"mean"`
			Min   float64 `json:"min"`
			Max   float64 `json:"max"`
		} `json:"lat_ms"`
	} `json:"items"`
}

func TestTopKDisabled(t *testing.T) {
	_, srv := newServer(t) // exact mode: no FlowTableBytes
	resp, err := http.Get(srv.URL + "/api/topk")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409 when the sketch tier is off", resp.StatusCode)
	}
}

func TestTopKFlowsAndPrefixes(t *testing.T) {
	p, srv := newSketchServer(t)
	// Two flows on queue 0, skewed 10:1 so the ranking is unambiguous;
	// one more on queue 1 to prove the merge spans queues.
	for i := 0; i < 10; i++ {
		p.Sketch[0].Observe(topkSummary(1, 40000, 1500))
	}
	p.Sketch[0].Observe(topkSummary(2, 40001, 100))
	p.Sketch[1].Observe(topkSummary(3, 40002, 700))
	for _, tier := range p.Sketch {
		tier.Publish(true)
	}

	var got topkResp
	getJSON(t, srv.URL+"/api/topk?key=flow&n=2", &got)
	if got.Key != "flow" || len(got.Items) != 2 {
		t.Fatalf("flow topk = %+v, want key=flow with 2 items", got)
	}
	if got.Items[0].Key != "10.0.0.1:40000<->192.0.2.1:443" {
		t.Fatalf("top flow = %q, want the 10x1500B flow first", got.Items[0].Key)
	}
	if got.Items[0].Count < 15000 {
		t.Fatalf("top flow count = %d, want >= 15000 (never underestimates)", got.Items[0].Count)
	}

	// Defaulted params: key=flow, n=10 — all three flows rank.
	var all topkResp
	getJSON(t, srv.URL+"/api/topk", &all)
	if all.Key != "flow" || len(all.Items) != 3 {
		t.Fatalf("default topk = %+v, want 3 flows", all)
	}

	// All sources share 10.0.0.0/24, so the prefix view merges the three
	// flows (across both queues) into a single heavy hitter.
	var pfx topkResp
	getJSON(t, srv.URL+"/api/topk?key=prefix", &pfx)
	if len(pfx.Items) != 1 || pfx.Items[0].Key != "10.0.0.0/24" {
		t.Fatalf("prefix topk = %+v, want only 10.0.0.0/24", pfx)
	}
	if pfx.Items[0].Count < 15800 {
		t.Fatalf("prefix count = %d, want cross-queue sum >= 15800", pfx.Items[0].Count)
	}
}

func TestTopKCityPairs(t *testing.T) {
	p, srv := newSketchServer(t)
	feedSamples(p, 5) // Auckland -> Los Angeles, latencies 140..144ms

	var got topkResp
	getJSON(t, srv.URL+"/api/topk?key=city_pair", &got)
	if got.Key != "city_pair" || len(got.Items) != 1 {
		t.Fatalf("city_pair topk = %+v, want one pair", got)
	}
	it := got.Items[0]
	if it.Key != "Auckland→Los Angeles" || it.Count != 5 {
		t.Fatalf("pair = %+v", it)
	}
	if it.Lat == nil || it.Lat.Count != 5 || it.Lat.Min != 140 || it.Lat.Max != 144 {
		t.Fatalf("pair latency = %+v, want 5 samples spanning 140..144ms", it.Lat)
	}
	if it.Lat.Mean < 140 || it.Lat.Mean > 144 {
		t.Fatalf("pair mean = %v out of range", it.Lat.Mean)
	}
}

func TestTopKBadRequests(t *testing.T) {
	_, srv := newSketchServer(t)
	for _, q := range []string{"?key=bogus", "?n=-3", "?n=junk"} {
		resp, err := http.Get(srv.URL + "/api/topk" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /api/topk%s = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestTopKEmpty: the enabled-but-idle tier serves an empty items array,
// not null — dashboards iterate without nil checks.
func TestTopKEmpty(t *testing.T) {
	_, srv := newSketchServer(t)
	var got topkResp
	getJSON(t, srv.URL+"/api/topk?key=flow", &got)
	if got.Items == nil || len(got.Items) != 0 {
		t.Fatalf("idle topk items = %#v, want empty non-nil array", got.Items)
	}
}
