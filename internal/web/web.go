// Package web exposes Ruru's HTTP API: the Grafana-style statistics queries
// (paper §2: "the Grafana UI also shows statistics and graphs of the
// measured end-to-end latency (e.g., min, max, median, mean) for a required
// time interval"), the live-map WebSocket endpoint and arc feed, pipeline
// counters, and anomaly events.
//
// Endpoints (full reference with parameters, defaults, error codes and
// example requests in docs/API.md):
//
//	GET  /api/stats      — pipeline counters (JSON, incl. durability)
//	GET  /api/query      — windowed aggregates from the TSDB; the
//	                       resolution parameter selects raw vs rollup tiers
//	GET  /api/tags       — distinct tag values for dashboard pickers
//	GET  /api/arcs       — recent arcs for the 3D map (JSON)
//	GET  /api/topk       — sketch-tier heavy hitters (flows, prefixes,
//	                       city pairs); 409 without -flow-table-bytes
//	GET  /api/anomalies  — latency-spike, SYN-flood and surge events
//	POST /api/checkpoint — force a durable checkpoint + WAL truncation
//	POST /write          — Influx line-protocol ingest
//	GET  /snapshot       — full TSDB dump as line protocol
//	GET  /ws             — WebSocket live measurement feed (JSON arrays);
//	                       ?stream=rollup switches the client to coalesced
//	                       rollup-delta frames (see docs/API.md)
package web

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ruru/internal/anomaly"
	"ruru/internal/ruru"
	"ruru/internal/tsdb"
)

// Server wires a Pipeline to an http.Handler.
type Server struct {
	p   *ruru.Pipeline
	mux *http.ServeMux

	// snapshotErrors counts /snapshot responses that failed mid-stream
	// (client gone, or a stripe dump error). The failure is also reported
	// in-band via the Ruru-Snapshot-Error trailer — the status line is long
	// sent by then — so a piped `curl | restore` can tell a truncated dump
	// from a complete one.
	snapshotErrors atomic.Uint64
}

// NewServer builds the handler around p.
func NewServer(p *ruru.Pipeline) *Server {
	s := &Server{p: p, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/query", s.handleQuery)
	s.mux.HandleFunc("GET /api/tags", s.handleTags)
	s.mux.HandleFunc("GET /api/arcs", s.handleArcs)
	s.mux.HandleFunc("GET /api/topk", s.handleTopK)
	s.mux.HandleFunc("GET /api/anomalies", s.handleAnomalies)
	s.mux.HandleFunc("POST /api/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("POST /write", s.handleWrite)
	s.mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	s.mux.Handle("GET /ws", p.Hub)
	return s
}

// handleSnapshot streams the whole TSDB as line protocol — the export half
// of long-term storage. The output can be POSTed back to /write (here or on
// a real InfluxDB) to restore. The dump is staged per stripe before any
// byte reaches the client, so a slow (or adversarially stalled) consumer
// cannot hold TSDB locks and stall ingest.
// Completeness is reported in trailers (set after the body): a successful
// dump carries Ruru-Snapshot-Points, a failed one Ruru-Snapshot-Error plus
// a bump of the stats counter — the old code dropped both return values of
// DB.Snapshot, so a truncated dump was indistinguishable from a full one.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Trailer", "Ruru-Snapshot-Points, Ruru-Snapshot-Error")
	points, err := s.p.DB.Snapshot(w)
	if err != nil {
		s.snapshotErrors.Add(1)
		log.Printf("web: snapshot aborted after %d points: %v", points, err)
		w.Header().Set("Ruru-Snapshot-Error", err.Error())
		return
	}
	w.Header().Set("Ruru-Snapshot-Points", strconv.FormatInt(points, 10))
}

// handleCheckpoint forces a durable checkpoint: an atomic snapshot file
// plus truncation of the WAL behind it — the operator's "bound my restart
// replay time now" button (backups too: checkpoint, then copy the data
// dir). 409 when the pipeline runs without persistence.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	info, err := s.p.DB.Checkpoint()
	switch {
	case errors.Is(err, tsdb.ErrNoPersist):
		httpError(w, http.StatusConflict, "persistence not enabled (start with -data-dir)")
	case err != nil:
		httpError(w, http.StatusInternalServerError, err.Error())
	default:
		writeJSON(w, map[string]any{
			"wal_segment":          info.WALSegment,
			"points":               info.Points,
			"wal_segments_removed": info.SegmentsRemoved,
			"took_ms":              float64(info.Took.Microseconds()) / 1e3,
		})
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// webStats is the HTTP layer's own counter section of /api/stats, reported
// alongside the flattened pipeline counters under the "web" key.
type webStats struct {
	SnapshotErrors uint64 `json:"snapshot_errors"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		ruru.Stats
		Web webStats `json:"web"`
	}{
		Stats: s.p.Stats(),
		Web:   webStats{SnapshotErrors: s.snapshotErrors.Load()},
	})
}

// handleQuery: /api/query?measurement=latency&field=total_ms&start=0&end=1e12
//
//	&window=1e9&group_by=src_city&agg=mean,median&where=src_city:Auckland
//	&resolution=auto|raw|<duration>
//
// Parameter semantics and defaults are specified in docs/API.md; the
// parsing tests in web_test.go assert the two stay in sync.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	query := tsdb.Query{
		Measurement: q.Get("measurement"),
		Field:       q.Get("field"),
		GroupBy:     q.Get("group_by"),
	}
	if query.Measurement == "" {
		query.Measurement = "latency"
	}
	if query.Field == "" {
		query.Field = "total_ms"
	}
	var err error
	if query.Start, err = parseInt(q.Get("start"), 0); err != nil {
		httpError(w, http.StatusBadRequest, "bad start")
		return
	}
	if query.End, err = parseInt(q.Get("end"), 0); err != nil || query.End <= query.Start {
		httpError(w, http.StatusBadRequest, "bad end")
		return
	}
	if query.Window, err = parseInt(q.Get("window"), 0); err != nil {
		httpError(w, http.StatusBadRequest, "bad window")
		return
	}
	if query.Resolution, err = parseResolution(q.Get("resolution")); err != nil {
		httpError(w, http.StatusBadRequest, "bad resolution")
		return
	}
	for _, agg := range strings.Split(q.Get("agg"), ",") {
		agg = strings.TrimSpace(agg)
		if agg == "" {
			continue
		}
		if !tsdb.ValidAgg(tsdb.AggKind(agg)) {
			httpError(w, http.StatusBadRequest, "unknown agg "+agg)
			return
		}
		query.Aggs = append(query.Aggs, tsdb.AggKind(agg))
	}
	for _, clause := range q["where"] {
		k, v, ok := strings.Cut(clause, ":")
		if !ok {
			httpError(w, http.StatusBadRequest, "bad where clause")
			return
		}
		query.Where = append(query.Where, tsdb.Tag{Key: k, Value: v})
	}
	res, err := s.p.DB.Execute(query)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleTags(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	key := q.Get("key")
	if key == "" {
		httpError(w, http.StatusBadRequest, "missing key")
		return
	}
	start, err := parseInt(q.Get("start"), 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad start")
		return
	}
	end, err := parseInt(q.Get("end"), 1<<62)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad end")
		return
	}
	writeJSON(w, s.p.DB.TagValues(key, start, end))
}

// Arc is the live-map feed entry.
type Arc struct {
	FromLat float64 `json:"from_lat"`
	FromLon float64 `json:"from_lon"`
	ToLat   float64 `json:"to_lat"`
	ToLon   float64 `json:"to_lon"`
	TotalNs int64   `json:"total_ns"`
	SrcCity string  `json:"src_city"`
	DstCity string  `json:"dst_city"`
	Time    int64   `json:"time"`
}

func (s *Server) handleArcs(w http.ResponseWriter, r *http.Request) {
	n, err := parseInt(r.URL.Query().Get("n"), 1000)
	if err != nil || n < 0 {
		httpError(w, http.StatusBadRequest, "bad n")
		return
	}
	recent := s.p.RecentArcs(int(n))
	out := make([]Arc, 0, len(recent))
	for i := range recent {
		e := &recent[i]
		out = append(out, Arc{
			FromLat: e.Src.Lat, FromLon: e.Src.Lon,
			ToLat: e.Dst.Lat, ToLon: e.Dst.Lon,
			TotalNs: e.TotalNs,
			SrcCity: e.Src.City, DstCity: e.Dst.City,
			Time: e.Time,
		})
	}
	writeJSON(w, out)
}

// topkEntry is one /api/topk item. Count is an overestimate of the key's
// true total by at most Err (flow/prefix: bytes; city_pair: measurements);
// Count-Err is a guaranteed lower bound. Lat is only present for city_pair.
type topkEntry struct {
	Key   string  `json:"key"`
	Count uint64  `json:"count"`
	Err   uint64  `json:"err"`
	Lat   *latAgg `json:"lat_ms,omitempty"`
}

// latAgg summarizes handshake latency (milliseconds) over the entry's
// tenure in the summary.
type latAgg struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// handleTopK: /api/topk?key=flow|prefix|city_pair&n=10 — heavy hitters from
// the bounded-memory sketch tier. 409 when the tier is not enabled.
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if !s.p.SketchEnabled() {
		httpError(w, http.StatusConflict, "sketch tier not enabled (start with -flow-table-bytes)")
		return
	}
	q := r.URL.Query()
	n, err := parseInt(q.Get("n"), 10)
	if err != nil || n < 0 {
		httpError(w, http.StatusBadRequest, "bad n")
		return
	}
	key := q.Get("key")
	if key == "" {
		key = "flow"
	}
	var items []topkEntry
	switch key {
	case "flow":
		for _, it := range s.p.TopFlows(int(n)) {
			items = append(items, topkEntry{Key: it.Key.String(), Count: it.Count, Err: it.Err})
		}
	case "prefix":
		for _, it := range s.p.TopPrefixes(int(n)) {
			items = append(items, topkEntry{Key: it.Key.String(), Count: it.Count, Err: it.Err})
		}
	case "city_pair":
		for _, it := range s.p.TopPairs(int(n)) {
			e := topkEntry{Key: it.Key, Count: it.Count, Err: it.Err}
			if it.Lat.Count > 0 {
				e.Lat = &latAgg{
					Count: it.Lat.Count,
					Mean:  it.Lat.Sum / float64(it.Lat.Count),
					Min:   it.Lat.Min,
					Max:   it.Lat.Max,
				}
			}
			items = append(items, e)
		}
	default:
		httpError(w, http.StatusBadRequest, "bad key (want flow, prefix or city_pair)")
		return
	}
	if items == nil {
		items = []topkEntry{}
	}
	writeJSON(w, map[string]any{"key": key, "items": items})
}

func (s *Server) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	events := s.p.SpikeEvents()
	events = append(events, s.p.Surge.Events()...)
	events = append(events, s.p.FloodEvents()...)
	if events == nil {
		events = []anomaly.Event{}
	}
	writeJSON(w, events)
}

// handleWrite accepts Influx line protocol (one point per line), the ingest
// API external collectors POST to — Ruru's TSDB is wire-compatible with the
// paper's InfluxDB deployment at this boundary. Returns 204 on full success
// (Influx convention) or 400 with a per-line error summary.
func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request) {
	// Read one byte past the limit so an oversized body is detected rather
	// than silently truncated mid-line (which used to store a partial batch
	// and corrupt the last point).
	const writeBodyLimit = 8 << 20
	body, err := io.ReadAll(io.LimitReader(r.Body, writeBodyLimit+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read error")
		return
	}
	if len(body) > writeBodyLimit {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("body exceeds %d byte limit; split the batch", writeBodyLimit))
		return
	}
	var firstErr string
	wrote, failed := 0, 0
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := s.p.DB.WriteLine(line); err != nil {
			failed++
			if firstErr == "" {
				firstErr = fmt.Sprintf("%v in line %q", err, line)
			}
			continue
		}
		wrote++
	}
	if failed > 0 {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("wrote %d, rejected %d: %s", wrote, failed, firstErr))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// parseResolution maps the query parameter onto tsdb.Query.Resolution:
// ""/"auto" let the planner choose, "raw" forces the raw path, and
// anything else is a tier bucket width — a Go duration ("10s") or a
// nanosecond count ("1e10", "10000000000"), which must be positive.
func parseResolution(s string) (int64, error) {
	switch s {
	case "", "auto":
		return tsdb.ResolutionAuto, nil
	case "raw":
		return tsdb.ResolutionRaw, nil
	}
	n := int64(0)
	if d, err := time.ParseDuration(s); err == nil {
		n = d.Nanoseconds()
	} else if n, err = parseInt(s, 0); err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("web: non-positive resolution %q", s)
	}
	return n, nil
}

func parseInt(s string, def int64) (int64, error) {
	if s == "" {
		return def, nil
	}
	// Accept scientific notation (1e12) for convenience.
	if strings.ContainsAny(s, "eE.") {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, err
		}
		// int64(f) is undefined for NaN and values outside int64's range
		// (the spec leaves the result implementation-defined), so a client
		// sending end=1e300 must get a 400, not a platform-dependent bound.
		// Both limits are exact float64s; NaN fails the conjunction too.
		if !(f >= -9223372036854775808.0 && f < 9223372036854775808.0) {
			return 0, fmt.Errorf("web: integer parameter %q out of range", s)
		}
		return int64(f), nil
	}
	return strconv.ParseInt(s, 10, 64)
}
