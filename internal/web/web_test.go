package web

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ruru/internal/analytics"
	"ruru/internal/fed"
	"ruru/internal/geo"
	"ruru/internal/mq"
	"ruru/internal/ruru"
	"ruru/internal/tsdb"
	"ruru/internal/ws"
)

func newServer(t *testing.T) (*ruru.Pipeline, *httptest.Server) {
	t.Helper()
	w, err := geo.NewWorld(geo.WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ruru.New(ruru.Config{GeoDB: w.DB()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(p))
	t.Cleanup(func() { srv.Close(); p.Close() })
	return p, srv
}

func feedSamples(p *ruru.Pipeline, n int) {
	e := analytics.Enriched{
		Src: analytics.Endpoint{City: "Auckland", CountryCode: "NZ", Lat: -36.85, Lon: 174.76, ASN: 64000},
		Dst: analytics.Endpoint{City: "Los Angeles", CountryCode: "US", Lat: 34.05, Lon: -118.24, ASN: 64004},
	}
	for i := 0; i < n; i++ {
		e.Time = int64(i) * 1e9
		e.TotalNs = int64(140e6 + i%20*1e6)
		e.InternalNs = 15e6
		e.ExternalNs = e.TotalNs - e.InternalNs
		p.Feed(&e)
	}
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestStatsEndpoint(t *testing.T) {
	p, srv := newServer(t)
	feedSamples(p, 10)
	var st map[string]any
	getJSON(t, srv.URL+"/api/stats", &st)
	if st["DBPoints"].(float64) != 10 {
		t.Fatalf("stats: %v", st)
	}
}

// TestStatsContinuousRTTFields pins the /api/stats JSON surface for the
// continuous-RTT trackers: the stored-sample counters and both trackers'
// counter blocks must be present (zero-valued with the trackers off) so
// dashboards and the federation aggregator can rely on the shape without
// probing the configuration.
func TestStatsContinuousRTTFields(t *testing.T) {
	_, srv := newServer(t)
	var st map[string]any
	getJSON(t, srv.URL+"/api/stats", &st)
	for _, key := range []string{"TSSamples", "SeqSamples", "LossPoints"} {
		v, ok := st[key]
		if !ok {
			t.Errorf("/api/stats missing %q", key)
			continue
		}
		if n, ok := v.(float64); !ok || n != 0 {
			t.Errorf("%s = %v, want 0 with trackers off", key, v)
		}
	}
	cases := []struct {
		block  string
		fields []string
	}{
		{"TSRTT", []string{"Packets", "Inserted", "Samples", "Unmatched", "Expired", "TableFull", "Occupancy"}},
		{"Seq", []string{"Packets", "Inserted", "Samples", "OneDirSamples", "Unmatched", "Retrans", "RTO", "DupACK", "Expired", "TableFull", "Occupancy"}},
	}
	for _, tc := range cases {
		blk, ok := st[tc.block].(map[string]any)
		if !ok {
			t.Errorf("/api/stats missing tracker block %q (got %v)", tc.block, st[tc.block])
			continue
		}
		for _, f := range tc.fields {
			if _, ok := blk[f]; !ok {
				t.Errorf("/api/stats %s missing field %q", tc.block, f)
			}
		}
	}
}

func TestQueryEndpoint(t *testing.T) {
	p, srv := newServer(t)
	feedSamples(p, 100)
	var res []tsdb.SeriesResult
	getJSON(t, srv.URL+"/api/query?measurement=latency&field=total_ms&start=0&end=1e12&agg=count,mean,median&group_by=src_city", &res)
	if len(res) != 1 || res[0].Group != "Auckland" {
		t.Fatalf("res: %+v", res)
	}
	b := res[0].Buckets[0]
	if b.Count != 100 {
		t.Fatalf("count = %d", b.Count)
	}
	if b.Aggs[tsdb.AggMean] < 140 || b.Aggs[tsdb.AggMean] > 160 {
		t.Fatalf("mean = %v", b.Aggs[tsdb.AggMean])
	}
	// Filtered query.
	getJSON(t, srv.URL+"/api/query?start=0&end=1e12&agg=count&where=src_city:Auckland", &res)
	if res[0].Buckets[0].Count != 100 {
		t.Fatalf("filtered: %+v", res)
	}
	getJSON(t, srv.URL+"/api/query?start=0&end=1e12&agg=count&where=src_city:Nowhere", &res)
	if len(res) != 0 {
		t.Fatalf("bogus filter matched: %+v", res)
	}
}

// TestQueryParamParsing is the table-driven contract for handleQuery's
// parameter parsing: accepted forms, applied defaults, and rejections.
// The semantics asserted here are the ones documented in docs/API.md —
// change one, change both.
func TestQueryParamParsing(t *testing.T) {
	p, srv := newServer(t)
	feedSamples(p, 100) // times 0..99s, src_city=Auckland, total_ms≈140-160

	cases := []struct {
		name   string
		query  string
		status int
		// check runs against the decoded result for 200 responses.
		check func(t *testing.T, res []tsdb.SeriesResult)
	}{
		{"missing end rejected (end defaults to 0, <= start)", "", http.StatusBadRequest, nil},
		{"inverted range rejected", "start=10&end=5", http.StatusBadRequest, nil},
		{"equal start/end rejected", "start=10&end=10", http.StatusBadRequest, nil},
		{"unparseable start", "start=abc&end=10", http.StatusBadRequest, nil},
		{"unparseable end", "end=abc", http.StatusBadRequest, nil},
		{"end beyond float range rejected", "end=1e300", http.StatusBadRequest, nil},
		{"end beyond int64 rejected", "end=1e19", http.StatusBadRequest, nil},
		{"start below int64 rejected", "start=-1e300&end=10", http.StatusBadRequest, nil},
		{"unparseable window", "end=10&window=abc", http.StatusBadRequest, nil},
		{"unknown agg", "end=10&agg=bogus", http.StatusBadRequest, nil},
		{"where without colon", "end=10&where=nocolon", http.StatusBadRequest, nil},
		{"bad resolution", "end=10&resolution=abc", http.StatusBadRequest, nil},
		{"zero resolution", "end=10&resolution=0s", http.StatusBadRequest, nil},
		{"negative resolution", "end=10&resolution=-10s", http.StatusBadRequest, nil},
		{"resolution names no tier", "end=1e12&resolution=10s", http.StatusBadRequest, nil},
		{"scientific-notation bounds accepted", "start=0&end=1e12", http.StatusOK, nil},
		{"defaults: measurement latency, field total_ms, window whole range, agg mean",
			"end=1e12", http.StatusOK,
			func(t *testing.T, res []tsdb.SeriesResult) {
				if len(res) != 1 || len(res[0].Buckets) != 1 {
					t.Fatalf("res = %+v", res)
				}
				b := res[0].Buckets[0]
				if b.Count != 100 {
					t.Fatalf("default measurement/field missed the data: %+v", b)
				}
				if len(b.Aggs) != 1 || b.Aggs[tsdb.AggMean] < 140 || b.Aggs[tsdb.AggMean] > 160 {
					t.Fatalf("default agg: %+v", b.Aggs)
				}
			}},
		{"start defaults to 0", "end=50e9&agg=count", http.StatusOK,
			func(t *testing.T, res []tsdb.SeriesResult) {
				if res[0].Buckets[0].Count != 50 {
					t.Fatalf("count = %d, want the first 50 samples", res[0].Buckets[0].Count)
				}
			}},
		{"window splits the range", "end=100e9&window=10e9&agg=count", http.StatusOK,
			func(t *testing.T, res []tsdb.SeriesResult) {
				if len(res[0].Buckets) != 10 || res[0].Buckets[0].Count != 10 {
					t.Fatalf("buckets = %+v", res[0].Buckets)
				}
			}},
		{"agg list with spaces and empties", "end=1e12&agg=count,,%20mean", http.StatusOK,
			func(t *testing.T, res []tsdb.SeriesResult) {
				if len(res[0].Buckets[0].Aggs) != 2 {
					t.Fatalf("aggs = %+v", res[0].Buckets[0].Aggs)
				}
			}},
		{"resolution raw accepted without rollups", "end=1e12&resolution=raw", http.StatusOK,
			func(t *testing.T, res []tsdb.SeriesResult) {
				if res[0].Tier != 0 {
					t.Fatalf("tier = %d", res[0].Tier)
				}
			}},
		{"resolution auto accepted without rollups", "end=1e12&resolution=auto", http.StatusOK, nil},
		{"repeated where clauses ANDed", "end=1e12&agg=count&where=src_city:Auckland&where=dst_city:Nowhere",
			http.StatusOK,
			func(t *testing.T, res []tsdb.SeriesResult) {
				if len(res) != 0 {
					t.Fatalf("conflicting filters matched: %+v", res)
				}
			}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			u := srv.URL + "/api/query?" + c.query
			if c.status != http.StatusOK {
				resp := getJSON(t, u, nil)
				if resp.StatusCode != c.status {
					t.Fatalf("status %d, want %d", resp.StatusCode, c.status)
				}
				return
			}
			var res []tsdb.SeriesResult
			if resp := getJSON(t, u, &res); resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			if c.check != nil {
				c.check(t, res)
			}
		})
	}
}

// TestQueryEmptyBucketsSerializeNull pins the docs/API.md claim that an
// empty bucket's value aggregations arrive as JSON null: tsdb represents
// them as NaN, which encoding/json cannot emit — without Bucket's custom
// marshalling the whole response would silently truncate to an empty 200.
func TestQueryEmptyBucketsSerializeNull(t *testing.T) {
	p, srv := newServer(t)
	feedSamples(p, 5) // samples at 0..4s; buckets past 5s are empty
	resp, err := http.Get(srv.URL + "/api/query?end=20e9&window=10e9&agg=count,mean")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := new(strings.Builder)
	if _, err := io.Copy(body, resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || body.Len() == 0 {
		t.Fatalf("status %d, %d-byte body", resp.StatusCode, body.Len())
	}
	if !strings.Contains(body.String(), `"mean":null`) {
		t.Fatalf("empty bucket's mean not null: %s", body.String())
	}
	var res []tsdb.SeriesResult
	if err := json.Unmarshal([]byte(body.String()), &res); err != nil {
		t.Fatalf("response is not valid JSON: %v", err)
	}
	if res[0].Buckets[1].Count != 0 || res[0].Buckets[1].Aggs[tsdb.AggCount] != 0 {
		t.Fatalf("empty bucket: %+v", res[0].Buckets[1])
	}
}

// TestQueryResolutionParam runs the resolution parameter against a
// rollup-enabled pipeline: auto planning, tier reporting, forcing a tier,
// and forcing raw.
func TestQueryResolutionParam(t *testing.T) {
	w, err := geo.NewWorld(geo.WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ruru.New(ruru.Config{GeoDB: w.DB(), Rollups: tsdb.DefaultRollups()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(p))
	t.Cleanup(func() { srv.Close(); p.Close() })
	feedSamples(p, 100)

	var res []tsdb.SeriesResult
	base := srv.URL + "/api/query?start=0&end=100e9&window=10e9&agg=count,p95"
	getJSON(t, base, &res)
	if len(res) != 1 || res[0].Tier != 10e9 {
		t.Fatalf("auto: %+v", res)
	}
	getJSON(t, base+"&resolution=1s", &res)
	if res[0].Tier != 1e9 {
		t.Fatalf("forced 1s: tier = %d", res[0].Tier)
	}
	getJSON(t, base+"&resolution=raw", &res)
	if res[0].Tier != 0 {
		t.Fatalf("forced raw: tier = %d", res[0].Tier)
	}
	if c := res[0].Buckets[0].Count; c != 10 {
		t.Fatalf("raw count = %d", c)
	}
	// A width that names no tier is a 400 (ErrBadResolution).
	if resp := getJSON(t, base+"&resolution=5s", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown tier width: status %d", resp.StatusCode)
	}
}

func TestTagsEndpoint(t *testing.T) {
	p, srv := newServer(t)
	feedSamples(p, 5)
	var tags []string
	getJSON(t, srv.URL+"/api/tags?key=src_city", &tags)
	if len(tags) != 1 || tags[0] != "Auckland" {
		t.Fatalf("tags: %v", tags)
	}
	resp := getJSON(t, srv.URL+"/api/tags", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing key: %d", resp.StatusCode)
	}
}

func TestArcsEndpoint(t *testing.T) {
	p, srv := newServer(t)
	feedSamples(p, 50)
	var arcs []Arc
	getJSON(t, srv.URL+"/api/arcs?n=10", &arcs)
	if len(arcs) != 10 {
		t.Fatalf("%d arcs", len(arcs))
	}
	a := arcs[0]
	if a.SrcCity != "Auckland" || a.DstCity != "Los Angeles" {
		t.Fatalf("arc: %+v", a)
	}
	if a.FromLat > -30 || a.ToLat < 30 {
		t.Fatalf("coordinates: %+v", a)
	}
}

func TestAnomaliesEndpoint(t *testing.T) {
	p, srv := newServer(t)
	feedSamples(p, 500)
	// Inject a glitch through the pipeline.
	e := analytics.Enriched{
		Time: 600e9, TotalNs: 4145e6,
		Src: analytics.Endpoint{City: "Auckland"},
		Dst: analytics.Endpoint{City: "Los Angeles"},
	}
	p.Feed(&e)
	var events []map[string]any
	getJSON(t, srv.URL+"/api/anomalies", &events)
	found := false
	for _, ev := range events {
		if ev["Kind"] == "latency_spike" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no spike event in %v", events)
	}
}

func TestWebSocketLiveFeed(t *testing.T) {
	p, srv := newServer(t)
	url := "ws://" + strings.TrimPrefix(srv.URL, "http://") + "/ws"
	c, err := ws.Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for p.Hub.Clients() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("client never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	feedSamples(p, 3)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	// The live feed sends JSON arrays (the sink coalesces measurements
	// into batched frames).
	received := 0
	for received < 3 {
		op, msg, err := c.ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		if op != ws.OpText {
			t.Fatalf("opcode %v", op)
		}
		var batch []analytics.Enriched
		if err := json.Unmarshal(msg, &batch); err != nil {
			t.Fatalf("bad JSON: %v (%s)", err, msg)
		}
		for _, e := range batch {
			if e.Src.City != "Auckland" {
				t.Fatalf("payload: %+v", e)
			}
			received++
		}
	}
}

func TestWriteEndpointLineProtocol(t *testing.T) {
	p, srv := newServer(t)
	body := strings.NewReader(
		"latency,src_city=Sydney,dst_city=Tokyo total_ms=123.5 1000000000\n" +
			"# a comment\n" +
			"latency,src_city=Sydney,dst_city=Tokyo total_ms=150 2000000000\n")
	resp, err := http.Post(srv.URL+"/write", "text/plain", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var res []tsdb.SeriesResult
	getJSON(t, srv.URL+"/api/query?start=0&end=1e10&agg=count,max&where=src_city:Sydney", &res)
	if len(res) != 1 || res[0].Buckets[0].Count != 2 || res[0].Buckets[0].Aggs[tsdb.AggMax] != 150 {
		t.Fatalf("ingested data wrong: %+v", res)
	}
	_ = p
	// Malformed lines are rejected with a 400 and error detail.
	resp, err = http.Post(srv.URL+"/write", "text/plain", strings.NewReader("garbage without fields"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage status = %d", resp.StatusCode)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	p, srv := newServer(t)
	feedSamples(p, 25)
	resp, err := http.Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := make([]byte, 1<<20)
	n, _ := resp.Body.Read(body)
	lines := strings.Count(string(body[:n]), "\n")
	if lines != 25 {
		t.Fatalf("snapshot has %d lines, want 25", lines)
	}
	// The snapshot must round-trip through /write on a fresh pipeline.
	p2, srv2 := newServer(t)
	resp2, err := http.Post(srv2.URL+"/write", "text/plain", strings.NewReader(string(body[:n])))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNoContent {
		t.Fatalf("restore status %d", resp2.StatusCode)
	}
	if w, _ := p2.DB.WriteStats(); w != 25 {
		t.Fatalf("restored %d points", w)
	}
}

func TestCheckpointEndpoint(t *testing.T) {
	// Without persistence the endpoint must refuse, not 500 or pretend.
	_, srv := newServer(t)
	resp, err := http.Post(srv.URL+"/api/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("checkpoint without -data-dir: status %d, want 409", resp.StatusCode)
	}

	// With persistence: checkpoint responds with the cut, and a restarted
	// pipeline on the same directory serves the same points.
	w, err := geo.NewWorld(geo.WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := ruru.Config{GeoDB: w.DB(),
		Persist: tsdb.PersistOptions{Dir: dir, Fsync: tsdb.FsyncOff, CheckpointEvery: -1}}
	p, err := ruru.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(NewServer(p))
	feedSamples(p, 40)
	resp, err = http.Post(srv2.URL+"/api/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var ck struct {
		WALSegment uint64 `json:"wal_segment"`
		Points     int64  `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ck); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ck.Points != 40 || ck.WALSegment == 0 {
		t.Fatalf("checkpoint: status %d, %+v", resp.StatusCode, ck)
	}
	feedSamples(p, 10) // WAL tail past the checkpoint
	srv2.Close()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := ruru.New(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer p2.Close()
	st := p2.Stats()
	if !st.Persist.Enabled || st.Persist.RestoredPoints != 40 || st.Persist.WALReplayedPoints != 10 {
		t.Fatalf("restart recovery = %+v, want 40 restored + 10 replayed", st.Persist)
	}
	if st.DBPoints != 50 {
		t.Fatalf("restart DBPoints = %d, want 50", st.DBPoints)
	}
}

func TestParseIntForms(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"", 7, true}, {"123", 123, true}, {"1e9", 1e9, true},
		{"2.5e9", 25e8, true}, {"9e18", 9e18, true}, {"abc", 0, false},
		// int64(f) is implementation-defined for NaN and floats outside
		// int64's range, so these must be rejected, not silently mapped
		// to a platform-dependent bound.
		{"1e19", 0, false}, {"-1e19", 0, false},
		{"1e300", 0, false}, {"-1e300", 0, false},
		{"9.3e18", 0, false}, {"NaN", 0, false},
	}
	for _, c := range cases {
		got, err := parseInt(c.in, 7)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("parseInt(%q) = %d, %v", c.in, got, err)
		}
	}
}

func BenchmarkQueryEndpoint(b *testing.B) {
	w, _ := geo.NewWorld(geo.WorldOptions{})
	p, _ := ruru.New(ruru.Config{GeoDB: w.DB()})
	defer p.Close()
	e := analytics.Enriched{
		Src: analytics.Endpoint{City: "Auckland"},
		Dst: analytics.Endpoint{City: "Los Angeles"},
	}
	for i := 0; i < 50000; i++ {
		e.Time = int64(i) * 1e7
		e.TotalNs = int64(140e6 + i%50*1e6)
		p.Feed(&e)
	}
	srv := httptest.NewServer(NewServer(p))
	defer srv.Close()
	url := srv.URL + "/api/query?start=0&end=1e12&window=1e10&agg=mean,median,p99&group_by=src_city"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}

// TestFederationQueryAndStats pins the federation surface of the HTTP API:
// an aggregator pipeline serves probe-tagged series through /api/query
// (filter and group-by on the probe tag — the cross-probe merge semantics)
// and reports per-probe liveness/lag/dedup counters in /api/stats.
func TestFederationQueryAndStats(t *testing.T) {
	w, err := geo.NewWorld(geo.WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ruru.New(ruru.Config{
		GeoDB:    w.DB(),
		Federate: fed.AggConfig{Listen: "127.0.0.1:0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(p))
	t.Cleanup(func() { srv.Close(); p.Close() })

	// Two probes stream measurements into the aggregator.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const perProbe = 120
	for _, id := range []string{"akl-1", "lax-1"} {
		bus := mq.NewBus()
		defer bus.Close()
		pr, err := fed.NewProbe(fed.ProbeConfig{
			Addr: p.Agg.Addr().String(), ID: id, SpoolDir: t.TempDir(),
			BatchSize: 16, FlushEvery: 5 * time.Millisecond,
		}, bus)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pr.Close() })
		go pr.Run(ctx)
		go func() {
			e := analytics.Enriched{
				Src: analytics.Endpoint{City: "Auckland", CountryCode: "NZ"},
				Dst: analytics.Endpoint{City: "Los Angeles", CountryCode: "US"},
			}
			for i := 0; i < perProbe; i++ {
				e.Time = int64(i+1) * 1e6
				e.TotalNs = 140e6
				bus.Publish(mq.Message{Topic: analytics.TopicEnriched,
					Payload: analytics.MarshalEnriched(nil, &e)})
			}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		written, _ := p.DB.WriteStats()
		if written == 2*perProbe {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d/%d points applied", written, 2*perProbe)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// group_by=probe splits the fleet into one series per probe.
	var res []tsdb.SeriesResult
	getJSON(t, srv.URL+"/api/query?start=0&end=1e12&agg=count&group_by=probe", &res)
	if len(res) != 2 || res[0].Group != "akl-1" || res[1].Group != "lax-1" {
		t.Fatalf("group_by=probe: %+v", res)
	}
	for _, sr := range res {
		if sr.Buckets[0].Count != perProbe {
			t.Fatalf("group %s count = %d, want %d", sr.Group, sr.Buckets[0].Count, perProbe)
		}
	}
	// where=probe:<id> filters to one probe; the unfiltered query merges.
	getJSON(t, srv.URL+"/api/query?start=0&end=1e12&agg=count&where=probe:akl-1", &res)
	if len(res) != 1 || res[0].Buckets[0].Count != perProbe {
		t.Fatalf("where=probe:akl-1: %+v", res)
	}
	getJSON(t, srv.URL+"/api/query?start=0&end=1e12&agg=count", &res)
	if len(res) != 1 || res[0].Buckets[0].Count != 2*perProbe {
		t.Fatalf("cross-probe merge: %+v", res)
	}
	// /api/tags serves the probe tag for dashboard pickers.
	var vals []string
	getJSON(t, srv.URL+"/api/tags?key=probe", &vals)
	if len(vals) != 2 || vals[0] != "akl-1" || vals[1] != "lax-1" {
		t.Fatalf("tags probe: %v", vals)
	}

	// /api/stats carries per-probe liveness, lag and dedup counters.
	var st struct {
		Fed struct {
			Enabled bool
			Points  uint64
			Probes  []struct {
				ID        string
				Connected bool
				LastSeq   uint64
				Points    uint64
				LagNs     int64
			}
		}
	}
	getJSON(t, srv.URL+"/api/stats", &st)
	if !st.Fed.Enabled || st.Fed.Points != 2*perProbe || len(st.Fed.Probes) != 2 {
		t.Fatalf("fed stats: %+v", st.Fed)
	}
	for _, ps := range st.Fed.Probes {
		if !ps.Connected || ps.LastSeq == 0 || ps.Points != perProbe || ps.LagNs < 0 {
			t.Fatalf("probe stats: %+v", ps)
		}
	}
}

// TestWriteBodyLimit pins handleWrite's oversize-body contract: a batch
// over the 8MiB limit is rejected whole with a 413 — the old LimitReader
// silently truncated the body mid-line, storing a partial batch whose last
// point was parsed from half a line.
func TestWriteBodyLimit(t *testing.T) {
	p, srv := newServer(t)

	// A body of valid lines that crosses the limit: every line would parse,
	// so only the size check can reject it — proving nothing was ingested.
	line := "latency,src_city=Sydney,dst_city=Tokyo total_ms=123.5 1000000000\n"
	lines := (8<<20)/len(line) + 2
	body := strings.Repeat(line, lines)
	resp, err := http.Post(srv.URL+"/write", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%s)", resp.StatusCode, msg)
	}
	if !strings.Contains(string(msg), "limit") {
		t.Fatalf("413 body gives no hint: %s", msg)
	}
	if w, _ := p.DB.WriteStats(); w != 0 {
		t.Fatalf("oversized batch partially ingested: %d points", w)
	}

	// At the limit exactly (padded with comments) the batch goes through.
	pad := 8<<20 - len(line)
	ok := line + "# " + strings.Repeat("x", pad-3) + "\n"
	if len(ok) != 8<<20 {
		t.Fatalf("test bug: body is %d bytes", len(ok))
	}
	resp, err = http.Post(srv.URL+"/write", "text/plain", strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("at-limit status = %d, want 204", resp.StatusCode)
	}
	if w, _ := p.DB.WriteStats(); w != 1 {
		t.Fatalf("at-limit batch stored %d points, want 1", w)
	}
}

// brokenWriter is a ResponseWriter whose client has gone away: every body
// write fails. Header/WriteHeader behave normally so the handler's trailer
// bookkeeping is exercised.
type brokenWriter struct{ hdr http.Header }

func (w *brokenWriter) Header() http.Header       { return w.hdr }
func (w *brokenWriter) WriteHeader(int)           {}
func (w *brokenWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

// TestSnapshotCompletionReporting pins the fix for the dropped
// DB.Snapshot results: a successful dump announces its point count in the
// Ruru-Snapshot-Points trailer, and a failed one (client disconnect
// mid-stream) bumps the web.snapshot_errors counter in /api/stats instead
// of vanishing — previously a truncated dump was indistinguishable from a
// complete one.
func TestSnapshotCompletionReporting(t *testing.T) {
	p, srv := newServer(t)
	feedSamples(p, 25)

	resp, err := http.Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Trailer.Get("Ruru-Snapshot-Points"); got != "25" {
		t.Fatalf("Ruru-Snapshot-Points trailer = %q, want \"25\" (trailers: %v)", got, resp.Trailer)
	}
	if resp.Trailer.Get("Ruru-Snapshot-Error") != "" {
		t.Fatalf("error trailer on a successful dump: %v", resp.Trailer)
	}
	if lines := strings.Count(string(body), "\n"); lines != 25 {
		t.Fatalf("snapshot has %d lines", lines)
	}

	// Abort the stream: the handler must count the failure.
	s := NewServer(p)
	req := httptest.NewRequest("GET", "/snapshot", nil)
	bw := &brokenWriter{hdr: make(http.Header)}
	s.ServeHTTP(bw, req)
	if got := bw.hdr.Get("Ruru-Snapshot-Error"); got == "" {
		t.Fatal("aborted dump set no Ruru-Snapshot-Error trailer")
	}
	var st struct {
		Web struct {
			SnapshotErrors uint64 `json:"snapshot_errors"`
		} `json:"web"`
	}
	// The broken request went through a second Server instance, so query
	// its stats directly rather than via srv (whose counter is still 0).
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/api/stats", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Web.SnapshotErrors != 1 {
		t.Fatalf("web.snapshot_errors = %d, want 1", st.Web.SnapshotErrors)
	}

	// And the original server — no failures — reports zero.
	var st2 struct {
		Web struct {
			SnapshotErrors uint64 `json:"snapshot_errors"`
		} `json:"web"`
	}
	getJSON(t, srv.URL+"/api/stats", &st2)
	if st2.Web.SnapshotErrors != 0 {
		t.Fatalf("untouched server reports %d snapshot errors", st2.Web.SnapshotErrors)
	}
}

// TestWebSocketRollupDeltaStream is the end-to-end contract for
// /ws?stream=rollup: delta frames carry per-(city-pair, bucket) increments
// whose merge (counts and sums add, min/max take extrema) reconstructs the
// TSDB's 1s tier state exactly, and the live and rollup audiences never
// see each other's frames.
func TestWebSocketRollupDeltaStream(t *testing.T) {
	p, srv := newServer(t)
	base := "ws://" + strings.TrimPrefix(srv.URL, "http://")
	live, err := ws.Dial(base + "/ws")
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	rollup, err := ws.Dial(base + "/ws?stream=rollup")
	if err != nil {
		t.Fatal(err)
	}
	defer rollup.Close()
	deadline := time.Now().Add(2 * time.Second)
	for p.Hub.LiveClients() < 1 || p.Hub.RollupClients() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("clients never registered: live=%d rollup=%d",
				p.Hub.LiveClients(), p.Hub.RollupClients())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A rollup client alone must not receive live event frames: everything
	// it reads is asserted to be a delta frame below, so an interleaved
	// event array would fail the stream check.
	type cell struct {
		count       uint64
		sum, mn, mx float64
	}
	state := map[string]map[int64]*cell{} // pair → bucket start → merged cell
	readAndMerge := func() {
		t.Helper()
		rollup.SetReadDeadline(time.Now().Add(2 * time.Second))
		op, msg, err := rollup.ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		if op != ws.OpText {
			t.Fatalf("opcode %v", op)
		}
		var f ruru.RollupFrame
		if err := json.Unmarshal(msg, &f); err != nil {
			t.Fatalf("bad frame: %v (%s)", err, msg)
		}
		if f.Stream != "rollup" || f.Width != 1e9 {
			t.Fatalf("frame header: stream=%q width=%d", f.Stream, f.Width)
		}
		for _, b := range f.Buckets {
			m := state[b.Pair]
			if m == nil {
				m = map[int64]*cell{}
				state[b.Pair] = m
			}
			c := m[b.Start]
			if c == nil {
				m[b.Start] = &cell{count: b.Count, sum: b.SumMs, mn: b.MinMs, mx: b.MaxMs}
				continue
			}
			c.count += b.Count
			c.sum += b.SumMs
			if b.MinMs < c.mn {
				c.mn = b.MinMs
			}
			if b.MaxMs > c.mx {
				c.mx = b.MaxMs
			}
		}
	}

	// Two identical rounds: the second frame carries pure deltas (the
	// flusher reset its accumulator), so merging must double the counts
	// and sums while leaving min/max fixed.
	for round := 0; round < 2; round++ {
		feedSamples(p, 40)
		p.FlushRollupStream()
		readAndMerge()
	}

	if len(state) != 1 {
		t.Fatalf("pairs = %v, want just Auckland→Los Angeles", state)
	}
	cells := state["Auckland→Los Angeles"]
	if cells == nil {
		t.Fatalf("pair key wrong: %v", state)
	}

	// The merged client state must reconstruct the TSDB 1s tier exactly.
	res, err := p.DB.Execute(tsdb.Query{
		Measurement: "latency", Field: "total_ms",
		Start: 0, End: 40e9, Window: 1e9,
		Aggs: []tsdb.AggKind{tsdb.AggCount, tsdb.AggSum, tsdb.AggMin, tsdb.AggMax},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Buckets) != 40 {
		t.Fatalf("db result shape: %+v", res)
	}
	if len(cells) != 40 {
		t.Fatalf("reconstructed %d buckets, want 40", len(cells))
	}
	for _, b := range res[0].Buckets {
		c := cells[b.Start]
		if c == nil {
			t.Fatalf("bucket %d missing from reconstruction", b.Start)
		}
		if c.count != uint64(b.Count) || c.sum != b.Aggs[tsdb.AggSum] ||
			c.mn != b.Aggs[tsdb.AggMin] || c.mx != b.Aggs[tsdb.AggMax] {
			t.Fatalf("bucket %d: reconstructed %+v, db count=%d aggs=%v",
				b.Start, *c, b.Count, b.Aggs)
		}
	}

	// The live client meanwhile received plain event frames (JSON arrays
	// of enriched measurements), not deltas.
	live.SetReadDeadline(time.Now().Add(2 * time.Second))
	op, msg, err := live.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != ws.OpText {
		t.Fatalf("live opcode %v", op)
	}
	var batch []analytics.Enriched
	if err := json.Unmarshal(msg, &batch); err != nil {
		t.Fatalf("live frame not an event array: %v (%s)", err, msg)
	}
	if len(batch) == 0 || batch[0].Src.City != "Auckland" {
		t.Fatalf("live payload: %+v", batch)
	}

	// Stats surface the broadcast counters and the (disabled) query cache.
	var st struct {
		RollupFrames uint64
		RollupCells  uint64
		QueryCache   tsdb.CacheStats
	}
	getJSON(t, srv.URL+"/api/stats", &st)
	if st.RollupFrames != 2 || st.RollupCells != 80 {
		t.Fatalf("rollup stats: frames=%d cells=%d, want 2/80", st.RollupFrames, st.RollupCells)
	}
	if st.QueryCache.Enabled {
		t.Fatal("query cache reported enabled without QueryCacheBytes")
	}
}
