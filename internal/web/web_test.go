package web

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ruru/internal/analytics"
	"ruru/internal/geo"
	"ruru/internal/ruru"
	"ruru/internal/tsdb"
	"ruru/internal/ws"
)

func newServer(t *testing.T) (*ruru.Pipeline, *httptest.Server) {
	t.Helper()
	w, err := geo.NewWorld(geo.WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ruru.New(ruru.Config{GeoDB: w.DB()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(p))
	t.Cleanup(func() { srv.Close(); p.Close() })
	return p, srv
}

func feedSamples(p *ruru.Pipeline, n int) {
	e := analytics.Enriched{
		Src: analytics.Endpoint{City: "Auckland", CountryCode: "NZ", Lat: -36.85, Lon: 174.76, ASN: 64000},
		Dst: analytics.Endpoint{City: "Los Angeles", CountryCode: "US", Lat: 34.05, Lon: -118.24, ASN: 64004},
	}
	for i := 0; i < n; i++ {
		e.Time = int64(i) * 1e9
		e.TotalNs = int64(140e6 + i%20*1e6)
		e.InternalNs = 15e6
		e.ExternalNs = e.TotalNs - e.InternalNs
		p.Feed(&e)
	}
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestStatsEndpoint(t *testing.T) {
	p, srv := newServer(t)
	feedSamples(p, 10)
	var st map[string]any
	getJSON(t, srv.URL+"/api/stats", &st)
	if st["DBPoints"].(float64) != 10 {
		t.Fatalf("stats: %v", st)
	}
}

func TestQueryEndpoint(t *testing.T) {
	p, srv := newServer(t)
	feedSamples(p, 100)
	var res []tsdb.SeriesResult
	getJSON(t, srv.URL+"/api/query?measurement=latency&field=total_ms&start=0&end=1e12&agg=count,mean,median&group_by=src_city", &res)
	if len(res) != 1 || res[0].Group != "Auckland" {
		t.Fatalf("res: %+v", res)
	}
	b := res[0].Buckets[0]
	if b.Count != 100 {
		t.Fatalf("count = %d", b.Count)
	}
	if b.Aggs[tsdb.AggMean] < 140 || b.Aggs[tsdb.AggMean] > 160 {
		t.Fatalf("mean = %v", b.Aggs[tsdb.AggMean])
	}
	// Filtered query.
	getJSON(t, srv.URL+"/api/query?start=0&end=1e12&agg=count&where=src_city:Auckland", &res)
	if res[0].Buckets[0].Count != 100 {
		t.Fatalf("filtered: %+v", res)
	}
	getJSON(t, srv.URL+"/api/query?start=0&end=1e12&agg=count&where=src_city:Nowhere", &res)
	if len(res) != 0 {
		t.Fatalf("bogus filter matched: %+v", res)
	}
}

func TestQueryEndpointValidation(t *testing.T) {
	_, srv := newServer(t)
	for _, u := range []string{
		"/api/query",                      // missing end
		"/api/query?start=10&end=5",       // inverted
		"/api/query?end=10&agg=bogus",     // unknown agg
		"/api/query?end=10&where=nocolon", // bad where
		"/api/query?end=abc",              // unparseable
	} {
		resp := getJSON(t, srv.URL+u, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d", u, resp.StatusCode)
		}
	}
}

func TestTagsEndpoint(t *testing.T) {
	p, srv := newServer(t)
	feedSamples(p, 5)
	var tags []string
	getJSON(t, srv.URL+"/api/tags?key=src_city", &tags)
	if len(tags) != 1 || tags[0] != "Auckland" {
		t.Fatalf("tags: %v", tags)
	}
	resp := getJSON(t, srv.URL+"/api/tags", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing key: %d", resp.StatusCode)
	}
}

func TestArcsEndpoint(t *testing.T) {
	p, srv := newServer(t)
	feedSamples(p, 50)
	var arcs []Arc
	getJSON(t, srv.URL+"/api/arcs?n=10", &arcs)
	if len(arcs) != 10 {
		t.Fatalf("%d arcs", len(arcs))
	}
	a := arcs[0]
	if a.SrcCity != "Auckland" || a.DstCity != "Los Angeles" {
		t.Fatalf("arc: %+v", a)
	}
	if a.FromLat > -30 || a.ToLat < 30 {
		t.Fatalf("coordinates: %+v", a)
	}
}

func TestAnomaliesEndpoint(t *testing.T) {
	p, srv := newServer(t)
	feedSamples(p, 500)
	// Inject a glitch through the pipeline.
	e := analytics.Enriched{
		Time: 600e9, TotalNs: 4145e6,
		Src: analytics.Endpoint{City: "Auckland"},
		Dst: analytics.Endpoint{City: "Los Angeles"},
	}
	p.Feed(&e)
	var events []map[string]any
	getJSON(t, srv.URL+"/api/anomalies", &events)
	found := false
	for _, ev := range events {
		if ev["Kind"] == "latency_spike" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no spike event in %v", events)
	}
}

func TestWebSocketLiveFeed(t *testing.T) {
	p, srv := newServer(t)
	url := "ws://" + strings.TrimPrefix(srv.URL, "http://") + "/ws"
	c, err := ws.Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for p.Hub.Clients() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("client never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	feedSamples(p, 3)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	// The live feed sends JSON arrays (the sink coalesces measurements
	// into batched frames).
	received := 0
	for received < 3 {
		op, msg, err := c.ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		if op != ws.OpText {
			t.Fatalf("opcode %v", op)
		}
		var batch []analytics.Enriched
		if err := json.Unmarshal(msg, &batch); err != nil {
			t.Fatalf("bad JSON: %v (%s)", err, msg)
		}
		for _, e := range batch {
			if e.Src.City != "Auckland" {
				t.Fatalf("payload: %+v", e)
			}
			received++
		}
	}
}

func TestWriteEndpointLineProtocol(t *testing.T) {
	p, srv := newServer(t)
	body := strings.NewReader(
		"latency,src_city=Sydney,dst_city=Tokyo total_ms=123.5 1000000000\n" +
			"# a comment\n" +
			"latency,src_city=Sydney,dst_city=Tokyo total_ms=150 2000000000\n")
	resp, err := http.Post(srv.URL+"/write", "text/plain", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var res []tsdb.SeriesResult
	getJSON(t, srv.URL+"/api/query?start=0&end=1e10&agg=count,max&where=src_city:Sydney", &res)
	if len(res) != 1 || res[0].Buckets[0].Count != 2 || res[0].Buckets[0].Aggs[tsdb.AggMax] != 150 {
		t.Fatalf("ingested data wrong: %+v", res)
	}
	_ = p
	// Malformed lines are rejected with a 400 and error detail.
	resp, err = http.Post(srv.URL+"/write", "text/plain", strings.NewReader("garbage without fields"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage status = %d", resp.StatusCode)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	p, srv := newServer(t)
	feedSamples(p, 25)
	resp, err := http.Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := make([]byte, 1<<20)
	n, _ := resp.Body.Read(body)
	lines := strings.Count(string(body[:n]), "\n")
	if lines != 25 {
		t.Fatalf("snapshot has %d lines, want 25", lines)
	}
	// The snapshot must round-trip through /write on a fresh pipeline.
	p2, srv2 := newServer(t)
	resp2, err := http.Post(srv2.URL+"/write", "text/plain", strings.NewReader(string(body[:n])))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNoContent {
		t.Fatalf("restore status %d", resp2.StatusCode)
	}
	if w, _ := p2.DB.WriteStats(); w != 25 {
		t.Fatalf("restored %d points", w)
	}
}

func TestParseIntForms(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"", 7, true}, {"123", 123, true}, {"1e9", 1e9, true},
		{"2.5e9", 25e8, true}, {"abc", 0, false},
	}
	for _, c := range cases {
		got, err := parseInt(c.in, 7)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("parseInt(%q) = %d, %v", c.in, got, err)
		}
	}
}

func BenchmarkQueryEndpoint(b *testing.B) {
	w, _ := geo.NewWorld(geo.WorldOptions{})
	p, _ := ruru.New(ruru.Config{GeoDB: w.DB()})
	defer p.Close()
	e := analytics.Enriched{
		Src: analytics.Endpoint{City: "Auckland"},
		Dst: analytics.Endpoint{City: "Los Angeles"},
	}
	for i := 0; i < 50000; i++ {
		e.Time = int64(i) * 1e7
		e.TotalNs = int64(140e6 + i%50*1e6)
		p.Feed(&e)
	}
	srv := httptest.NewServer(NewServer(p))
	defer srv.Close()
	url := srv.URL + "/api/query?start=0&end=1e12&window=1e10&agg=mean,median,p99&group_by=src_city"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}
