package core

import (
	"context"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"ruru/internal/nic"
	"ruru/internal/pkt"
	"ruru/internal/rss"
)

var hasher = rss.NewSymmetric()

// mkSummary builds a parsed TCP packet summary directly (no wire format
// needed for table unit tests).
func mkSummary(src, dst string, sp, dp uint16, flags uint8, seq, ack uint32) (*pkt.Summary, uint32) {
	s := &pkt.Summary{}
	srcA, dstA := netip.MustParseAddr(src), netip.MustParseAddr(dst)
	if srcA.Is4() {
		s.IP4.Src, s.IP4.Dst = srcA, dstA
		s.IPv6 = false
	} else {
		s.IP6.Src, s.IP6.Dst = srcA, dstA
		s.IPv6 = true
	}
	s.Decoded = pkt.LayerEthernet | pkt.LayerIPv4 | pkt.LayerTCP
	s.TCP = pkt.TCP{SrcPort: sp, DstPort: dp, Flags: flags, Seq: seq, Ack: ack}
	return s, hasher.HashTuple(srcA, dstA, sp, dp)
}

// handshake drives a full 3-way handshake through the table at the given
// timestamps, returning the measurement.
func handshake(t *testing.T, tbl *HandshakeTable, t1, t2, t3 int64) (Measurement, bool) {
	t.Helper()
	var m Measurement
	syn, h := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPSyn, 100, 0)
	if tbl.Process(syn, t1, h, &m) {
		t.Fatal("SYN completed a handshake")
	}
	synack, h2 := mkSummary("192.0.2.1", "10.0.0.1", 443, 40000, pkt.TCPSyn|pkt.TCPAck, 900, 101)
	if h2 != h {
		t.Fatal("symmetric hash mismatch") // sanity: same queue
	}
	if tbl.Process(synack, t2, h2, &m) {
		t.Fatal("SYN-ACK completed a handshake")
	}
	ack, h3 := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPAck, 101, 901)
	return m, tbl.Process(ack, t3, h3, &m)
}

func TestHandshakeLatencyCalculation(t *testing.T) {
	// Figure 1 semantics: external = t2-t1, internal = t3-t2.
	tbl := NewHandshakeTable(TableConfig{Capacity: 1024, Queue: 3})
	m, ok := handshake(t, tbl, 1_000_000, 31_000_000, 46_000_000)
	if !ok {
		t.Fatal("handshake did not complete")
	}
	if m.External != 30_000_000 {
		t.Fatalf("external = %d, want 30ms", m.External)
	}
	if m.Internal != 15_000_000 {
		t.Fatalf("internal = %d, want 15ms", m.Internal)
	}
	if m.Total != 45_000_000 || m.Total != m.Internal+m.External {
		t.Fatalf("total = %d", m.Total)
	}
	if m.SYNTime != 1_000_000 || m.SYNACKTime != 31_000_000 || m.ACKTime != 46_000_000 {
		t.Fatalf("timestamps: %+v", m)
	}
	if m.Queue != 3 {
		t.Fatalf("queue = %d", m.Queue)
	}
	if m.Flow.Client != netip.MustParseAddr("10.0.0.1") || m.Flow.ServerPort != 443 {
		t.Fatalf("flow = %v", m.Flow)
	}
	st := tbl.Stats()
	if st.SYNs != 1 || st.SYNACKs != 1 || st.Completed != 1 || st.Occupancy != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEntryRemovedAfterCompletion(t *testing.T) {
	tbl := NewHandshakeTable(TableConfig{Capacity: 64})
	if _, ok := handshake(t, tbl, 1, 2, 3); !ok {
		t.Fatal("no completion")
	}
	// A second identical ACK must now be counted as midstream.
	var m Measurement
	ack, h := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPAck, 101, 901)
	if tbl.Process(ack, 4, h, &m) {
		t.Fatal("duplicate ACK completed again")
	}
	if tbl.Stats().MidstreamACKs != 1 {
		t.Fatalf("stats = %+v", tbl.Stats())
	}
}

func TestSYNRetransmissionKeepsFirstTimestamp(t *testing.T) {
	tbl := NewHandshakeTable(TableConfig{Capacity: 64})
	var m Measurement
	syn, h := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPSyn, 100, 0)
	tbl.Process(syn, 1000, h, &m)
	tbl.Process(syn, 2000, h, &m) // retransmission, same ISN
	synack, _ := mkSummary("192.0.2.1", "10.0.0.1", 443, 40000, pkt.TCPSyn|pkt.TCPAck, 900, 101)
	tbl.Process(synack, 3000, h, &m)
	ack, _ := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPAck, 101, 901)
	if !tbl.Process(ack, 4000, h, &m) {
		t.Fatal("no completion")
	}
	if m.External != 2000 { // 3000 - 1000, from the FIRST SYN
		t.Fatalf("external = %d", m.External)
	}
	if m.SYNRetrans != 1 {
		t.Fatalf("retrans = %d", m.SYNRetrans)
	}
	if tbl.Stats().SYNRetrans != 1 {
		t.Fatalf("stats = %+v", tbl.Stats())
	}
}

func TestSYNACKRetransmissionKeepsFirst(t *testing.T) {
	tbl := NewHandshakeTable(TableConfig{Capacity: 64})
	var m Measurement
	syn, h := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPSyn, 100, 0)
	tbl.Process(syn, 1000, h, &m)
	synack, _ := mkSummary("192.0.2.1", "10.0.0.1", 443, 40000, pkt.TCPSyn|pkt.TCPAck, 900, 101)
	tbl.Process(synack, 2000, h, &m)
	tbl.Process(synack, 5000, h, &m) // retransmitted SYN-ACK
	ack, _ := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPAck, 101, 901)
	if !tbl.Process(ack, 6000, h, &m) {
		t.Fatal("no completion")
	}
	if m.External != 1000 || m.Internal != 4000 {
		t.Fatalf("external/internal = %d/%d", m.External, m.Internal)
	}
}

func TestNewIncarnationRestartsTracking(t *testing.T) {
	tbl := NewHandshakeTable(TableConfig{Capacity: 64})
	var m Measurement
	syn1, h := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPSyn, 100, 0)
	tbl.Process(syn1, 1000, h, &m)
	// Same tuple, different ISN: a new connection attempt.
	syn2, _ := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPSyn, 777, 0)
	tbl.Process(syn2, 9000, h, &m)
	synack, _ := mkSummary("192.0.2.1", "10.0.0.1", 443, 40000, pkt.TCPSyn|pkt.TCPAck, 900, 778)
	tbl.Process(synack, 10000, h, &m)
	ack, _ := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPAck, 778, 901)
	if !tbl.Process(ack, 11000, h, &m) {
		t.Fatal("no completion")
	}
	if m.External != 1000 || m.SYNTime != 9000 {
		t.Fatalf("measurement tracked the stale incarnation: %+v", m)
	}
}

func TestInvalidACKRejected(t *testing.T) {
	tbl := NewHandshakeTable(TableConfig{Capacity: 64})
	var m Measurement
	syn, h := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPSyn, 100, 0)
	tbl.Process(syn, 1000, h, &m)
	synack, _ := mkSummary("192.0.2.1", "10.0.0.1", 443, 40000, pkt.TCPSyn|pkt.TCPAck, 900, 101)
	tbl.Process(synack, 2000, h, &m)
	// Wrong ack number (not serverISN+1).
	bad, _ := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPAck, 101, 12345)
	if tbl.Process(bad, 3000, h, &m) {
		t.Fatal("invalid ACK completed handshake")
	}
	if tbl.Stats().InvalidACKs != 1 {
		t.Fatalf("stats = %+v", tbl.Stats())
	}
	// The correct ACK still completes.
	good, _ := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPAck, 101, 901)
	if !tbl.Process(good, 4000, h, &m) {
		t.Fatal("valid ACK rejected")
	}
}

func TestOrphanSYNACK(t *testing.T) {
	tbl := NewHandshakeTable(TableConfig{Capacity: 64})
	var m Measurement
	synack, h := mkSummary("192.0.2.1", "10.0.0.1", 443, 40000, pkt.TCPSyn|pkt.TCPAck, 900, 101)
	if tbl.Process(synack, 1000, h, &m) {
		t.Fatal("orphan SYN-ACK completed")
	}
	if tbl.Stats().OrphanSYNACKs != 1 || tbl.Len() != 0 {
		t.Fatalf("stats = %+v", tbl.Stats())
	}
}

func TestRSTAbortsEitherDirection(t *testing.T) {
	for _, fromClient := range []bool{true, false} {
		tbl := NewHandshakeTable(TableConfig{Capacity: 64})
		var m Measurement
		syn, h := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPSyn, 100, 0)
		tbl.Process(syn, 1000, h, &m)
		var rst *pkt.Summary
		if fromClient {
			rst, _ = mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPRst, 101, 0)
		} else {
			rst, _ = mkSummary("192.0.2.1", "10.0.0.1", 443, 40000, pkt.TCPRst|pkt.TCPAck, 0, 101)
		}
		tbl.Process(rst, 2000, h, &m)
		if tbl.Len() != 0 || tbl.Stats().Aborted != 1 {
			t.Fatalf("fromClient=%v: len=%d stats=%+v", fromClient, tbl.Len(), tbl.Stats())
		}
	}
}

func TestSYNRSTNeverInsertsOrRestarts(t *testing.T) {
	// Regression: IsSYN only checks SYN-set/ACK-clear, so a SYN|RST packet
	// used to hit the insert branch (RST was checked last) and corrupt the
	// table with a flow that can never complete.
	tbl := NewHandshakeTable(TableConfig{Capacity: 64})
	var m Measurement
	synrst, h := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPSyn|pkt.TCPRst, 100, 0)
	if tbl.Process(synrst, 1000, h, &m) {
		t.Fatal("SYN|RST completed a handshake")
	}
	if tbl.Len() != 0 {
		t.Fatalf("SYN|RST inserted a flow (live=%d)", tbl.Len())
	}
	if st := tbl.Stats(); st.SYNs != 0 {
		t.Fatalf("SYN|RST counted as SYN: %+v", st)
	}

	// Against a live flow, SYN|RST (with a new ISN — the old code's
	// "new incarnation" restart path) must abort, not restart tracking.
	syn, h := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPSyn, 200, 0)
	tbl.Process(syn, 2000, h, &m)
	if tbl.Len() != 1 {
		t.Fatalf("live = %d after SYN", tbl.Len())
	}
	if tbl.Process(synrst, 3000, h, &m) {
		t.Fatal("SYN|RST completed a handshake")
	}
	if tbl.Len() != 0 || tbl.Stats().Aborted != 1 {
		t.Fatalf("SYN|RST did not abort: live=%d stats=%+v", tbl.Len(), tbl.Stats())
	}
}

func TestRSTACKAbortsPendingFlow(t *testing.T) {
	// RST|ACK — the common refusal a server sends to a SYN — must take the
	// abort path in either orientation, never the ACK-matching path.
	for _, fromClient := range []bool{true, false} {
		tbl := NewHandshakeTable(TableConfig{Capacity: 64})
		var m Measurement
		syn, h := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPSyn, 100, 0)
		tbl.Process(syn, 1000, h, &m)
		var rstack *pkt.Summary
		if fromClient {
			rstack, _ = mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPRst|pkt.TCPAck, 101, 0)
		} else {
			rstack, _ = mkSummary("192.0.2.1", "10.0.0.1", 443, 40000, pkt.TCPRst|pkt.TCPAck, 0, 101)
		}
		if tbl.Process(rstack, 2000, h, &m) {
			t.Fatal("RST|ACK completed a handshake")
		}
		st := tbl.Stats()
		if tbl.Len() != 0 || st.Aborted != 1 {
			t.Fatalf("fromClient=%v: len=%d stats=%+v", fromClient, tbl.Len(), st)
		}
		if st.InvalidACKs != 0 || st.MidstreamACKs != 0 {
			t.Fatalf("fromClient=%v: RST|ACK hit the ACK path: %+v", fromClient, st)
		}
	}
}

func TestExpiryFeedsSYNFloodSignal(t *testing.T) {
	tbl := NewHandshakeTable(TableConfig{Capacity: 1024, Timeout: 1000})
	var m Measurement
	for i := 0; i < 100; i++ {
		syn, h := mkSummary("10.0.0.1", "192.0.2.1", uint16(1000+i), 443, pkt.TCPSyn, 1, 0)
		tbl.Process(syn, int64(i), h, &m)
	}
	if tbl.Len() != 100 {
		t.Fatalf("len = %d", tbl.Len())
	}
	tbl.SweepAll(10_000)
	if tbl.Len() != 0 {
		t.Fatalf("len after sweep = %d", tbl.Len())
	}
	st := tbl.Stats()
	if st.Expired != 100 || st.ExpiredAwait != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIncrementalSweepEvicts(t *testing.T) {
	// Run traffic long enough that maybeSweep alone (no SweepAll) evicts
	// the stale entries.
	tbl := NewHandshakeTable(TableConfig{Capacity: 256, Timeout: 1000})
	var m Measurement
	for i := 0; i < 50; i++ {
		syn, h := mkSummary("10.0.0.2", "192.0.2.1", uint16(2000+i), 443, pkt.TCPSyn, 1, 0)
		tbl.Process(syn, int64(i), h, &m)
	}
	// Keep feeding unrelated packets with advancing time; the stale
	// entries must be swept out along the way.
	for ts := int64(2000); ts < 200_000; ts += 100 {
		ack, h := mkSummary("10.9.9.9", "192.0.2.9", 5000, 80, pkt.TCPAck, 1, 1)
		tbl.Process(ack, ts, h, &m)
	}
	if tbl.Len() != 0 {
		t.Fatalf("incremental sweep left %d entries", tbl.Len())
	}
}

func TestTableFull(t *testing.T) {
	tbl := NewHandshakeTable(TableConfig{Capacity: 64}) // maxLive = 54
	var m Measurement
	full := 0
	for i := 0; i < 64; i++ {
		syn, h := mkSummary("10.0.0.1", "192.0.2.1", uint16(1000+i), 443, pkt.TCPSyn, 1, 0)
		tbl.Process(syn, int64(i), h, &m)
		if tbl.Stats().TableFull > 0 && full == 0 {
			full = i
		}
	}
	st := tbl.Stats()
	if st.TableFull == 0 {
		t.Fatal("table never reported full")
	}
	if tbl.Len() > 64*85/100 {
		t.Fatalf("live entries %d exceed load limit", tbl.Len())
	}
}

func TestManyConcurrentFlowsAllMeasured(t *testing.T) {
	// Interleave 1000 handshakes; all must complete with exact latencies.
	tbl := NewHandshakeTable(TableConfig{Capacity: 4096})
	var m Measurement
	type flow struct {
		sp     uint16
		t1, t2 int64
	}
	flows := make([]flow, 1000)
	for i := range flows {
		flows[i] = flow{sp: uint16(1024 + i), t1: int64(i * 10)}
		syn, h := mkSummary("10.0.0.1", "192.0.2.1", flows[i].sp, 443, pkt.TCPSyn, uint32(i), 0)
		if tbl.Process(syn, flows[i].t1, h, &m) {
			t.Fatal("SYN completed")
		}
	}
	for i := range flows {
		flows[i].t2 = int64(100000 + i*10)
		synack, h := mkSummary("192.0.2.1", "10.0.0.1", 443, flows[i].sp, pkt.TCPSyn|pkt.TCPAck, 5000, uint32(i)+1)
		if tbl.Process(synack, flows[i].t2, h, &m) {
			t.Fatal("SYN-ACK completed")
		}
	}
	completed := 0
	for i := range flows {
		t3 := int64(200000 + i*10)
		ack, h := mkSummary("10.0.0.1", "192.0.2.1", flows[i].sp, 443, pkt.TCPAck, uint32(i)+1, 5001)
		if tbl.Process(ack, t3, h, &m) {
			completed++
			if m.External != flows[i].t2-flows[i].t1 {
				t.Fatalf("flow %d external = %d, want %d", i, m.External, flows[i].t2-flows[i].t1)
			}
			if m.Internal != t3-flows[i].t2 {
				t.Fatalf("flow %d internal = %d", i, m.Internal)
			}
		}
	}
	if completed != 1000 {
		t.Fatalf("completed %d/1000", completed)
	}
	if tbl.Len() != 0 {
		t.Fatalf("table not empty: %d", tbl.Len())
	}
}

func TestBackwardShiftDeletionPreservesLookups(t *testing.T) {
	// Force collisions in a tiny table and verify deletions never break
	// other flows' probe chains.
	tbl := NewHandshakeTable(TableConfig{Capacity: 16})
	var m Measurement
	ports := []uint16{1, 2, 3, 4, 5, 6, 7, 8}
	for _, p := range ports {
		syn, h := mkSummary("10.0.0.1", "192.0.2.1", p, 443, pkt.TCPSyn, uint32(p), 0)
		tbl.Process(syn, 1, h, &m)
	}
	// Abort half via RST, then complete the rest.
	for _, p := range ports[:4] {
		rst, h := mkSummary("10.0.0.1", "192.0.2.1", p, 443, pkt.TCPRst, uint32(p)+1, 0)
		tbl.Process(rst, 2, h, &m)
	}
	for _, p := range ports[4:] {
		synack, h := mkSummary("192.0.2.1", "10.0.0.1", 443, p, pkt.TCPSyn|pkt.TCPAck, 100, uint32(p)+1)
		tbl.Process(synack, 3, h, &m)
		ack, _ := mkSummary("10.0.0.1", "192.0.2.1", p, 443, pkt.TCPAck, uint32(p)+1, 101)
		if !tbl.Process(ack, 4, h, &m) {
			t.Fatalf("flow on port %d lost after deletions", p)
		}
	}
	if tbl.Len() != 0 {
		t.Fatalf("len = %d", tbl.Len())
	}
}

func TestProcessZeroAlloc(t *testing.T) {
	tbl := NewHandshakeTable(TableConfig{Capacity: 1 << 12})
	var m Measurement
	syn, h := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPSyn, 100, 0)
	synack, _ := mkSummary("192.0.2.1", "10.0.0.1", 443, 40000, pkt.TCPSyn|pkt.TCPAck, 900, 101)
	ack, _ := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPAck, 101, 901)
	ts := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		ts += 3
		tbl.Process(syn, ts, h, &m)
		tbl.Process(synack, ts+1, h, &m)
		tbl.Process(ack, ts+2, h, &m)
	})
	if allocs != 0 {
		t.Fatalf("Process allocates %v per handshake; fast path must not allocate", allocs)
	}
}

func TestHandshakePropertyRandomizedLatencies(t *testing.T) {
	// For arbitrary t1 < t2 < t3, the engine reports exactly
	// external=t2-t1, internal=t3-t2, total=t3-t1.
	f := func(d1, d2 uint32, port uint16, isn uint32) bool {
		if port == 0 {
			port = 1
		}
		t1 := int64(1000)
		t2 := t1 + int64(d1%1_000_000_000) + 1
		t3 := t2 + int64(d2%1_000_000_000) + 1
		tbl := NewHandshakeTable(TableConfig{Capacity: 64})
		var m Measurement
		syn, h := mkSummary("10.0.0.1", "192.0.2.1", port, 443, pkt.TCPSyn, isn, 0)
		tbl.Process(syn, t1, h, &m)
		synack, _ := mkSummary("192.0.2.1", "10.0.0.1", 443, port, pkt.TCPSyn|pkt.TCPAck, isn+7, isn+1)
		tbl.Process(synack, t2, h, &m)
		ack, _ := mkSummary("10.0.0.1", "192.0.2.1", port, 443, pkt.TCPAck, isn+1, isn+8)
		if !tbl.Process(ack, t3, h, &m) {
			return false
		}
		return m.External == t2-t1 && m.Internal == t3-t2 && m.Total == t3-t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIPv6Handshake(t *testing.T) {
	tbl := NewHandshakeTable(TableConfig{Capacity: 64})
	var m Measurement
	syn, h := mkSummary("2001:db8::1", "2001:db8::2", 50000, 443, pkt.TCPSyn, 9, 0)
	tbl.Process(syn, 100, h, &m)
	synack, _ := mkSummary("2001:db8::2", "2001:db8::1", 443, 50000, pkt.TCPSyn|pkt.TCPAck, 77, 10)
	tbl.Process(synack, 200, h, &m)
	ack, _ := mkSummary("2001:db8::1", "2001:db8::2", 50000, 443, pkt.TCPAck, 10, 78)
	if !tbl.Process(ack, 350, h, &m) {
		t.Fatal("v6 handshake did not complete")
	}
	if !m.IPv6 || m.External != 100 || m.Internal != 150 {
		t.Fatalf("measurement: %+v", m)
	}
}

// --- Engine integration tests ---

func buildFrame(t testing.TB, src, dst string, sp, dp uint16, flags uint8, seq, ack uint32) []byte {
	t.Helper()
	spec := &pkt.TCPFrameSpec{
		SrcMAC: pkt.MAC{1}, DstMAC: pkt.MAC{2},
		Src: netip.MustParseAddr(src), Dst: netip.MustParseAddr(dst),
		SrcPort: sp, DstPort: dp, Flags: flags, Seq: seq, Ack: ack, Window: 65535,
	}
	buf := make([]byte, 128)
	n, err := pkt.BuildTCPFrame(buf, spec)
	if err != nil {
		t.Fatal(err)
	}
	return buf[:n]
}

func TestEngineEndToEnd(t *testing.T) {
	// Correctness harness: the source must be lossless, so the port runs
	// the Block overflow policy — injection backpressures instead of
	// dropping when a queue fills (the test tuples all collide onto one
	// RSS queue under the symmetric key, so bursts WILL fill it).
	pool := nic.NewMempool(4096, 2048)
	port, err := nic.NewPort(nic.PortConfig{
		Queues: 4, QueueDepth: 1024, Pool: pool, Policy: nic.Block,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []Measurement
	sink := SinkFunc(func(m *Measurement) {
		mu.Lock()
		got = append(got, *m)
		mu.Unlock()
	})
	eng, err := NewEngine(EngineConfig{Port: port, Sink: sink, Burst: 32,
		Table: TableConfig{Capacity: 1024}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx) }()

	const flows = 500
	for i := 0; i < flows; i++ {
		sp := uint16(1024 + i)
		src := netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}).String()
		t1 := int64(i) * 1_000_000
		t2 := t1 + 30_000_000
		t3 := t2 + 15_000_000
		port.Inject(buildFrame(t, src, "192.0.2.1", sp, 443, pkt.TCPSyn, 100, 0), t1)
		port.Inject(buildFrame(t, "192.0.2.1", src, 443, sp, pkt.TCPSyn|pkt.TCPAck, 500, 101), t2)
		port.Inject(buildFrame(t, src, "192.0.2.1", sp, 443, pkt.TCPAck, 101, 501), t3)
	}
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == flows {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("timeout: %d/%d measurements (stats %+v, port %+v)", n, flows, eng.Stats(), port.Stats())
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	<-done
	for _, m := range got {
		if m.External != 30_000_000 || m.Internal != 15_000_000 {
			t.Fatalf("wrong latency: %+v", m)
		}
	}
	if st := eng.Stats(); st.Completed != flows {
		t.Fatalf("stats: %+v", st)
	}
	if st := port.Stats(); st.Imissed != 0 || st.Ipackets != 3*flows {
		t.Fatalf("lossless source dropped frames: %+v", st)
	}
	if pool.Available() != pool.Size() {
		t.Fatalf("buffer leak: %d/%d", pool.Available(), pool.Size())
	}
}

func TestEngineValidation(t *testing.T) {
	pool := nic.NewMempool(16, 512)
	port, _ := nic.NewPort(nic.PortConfig{Queues: 1, Pool: pool})
	if _, err := NewEngine(EngineConfig{Sink: SinkFunc(func(*Measurement) {})}); err == nil {
		t.Fatal("nil port accepted")
	}
	if _, err := NewEngine(EngineConfig{Port: port}); err == nil {
		t.Fatal("nil sink accepted")
	}
}

func TestEngineDoubleRunRejected(t *testing.T) {
	pool := nic.NewMempool(16, 512)
	port, _ := nic.NewPort(nic.PortConfig{Queues: 1, Pool: pool})
	eng, _ := NewEngine(EngineConfig{Port: port, Sink: SinkFunc(func(*Measurement) {})})
	ctx, cancel := context.WithCancel(context.Background())
	go eng.Run(ctx)
	time.Sleep(10 * time.Millisecond)
	if err := eng.Run(ctx); err == nil || err == context.Canceled {
		t.Fatal("second Run accepted")
	}
	cancel()
}

func TestTableIntegrityUnderRandomInterleavings(t *testing.T) {
	// Property: any interleaving of handshake steps from many flows keeps
	// the table consistent — completed + live + aborted accounting always
	// balances, and measured latencies are always the flow's own.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := NewHandshakeTable(TableConfig{Capacity: 256})
		type flowState struct {
			port  uint16
			step  int // 0: nothing, 1: SYN sent, 2: SYNACK sent
			t1    int64
			t2    int64
			reset bool
		}
		flows := make([]*flowState, 24)
		for i := range flows {
			flows[i] = &flowState{port: uint16(2000 + i)}
		}
		var m Measurement
		now := int64(0)
		completed := 0
		for op := 0; op < 800; op++ {
			now += int64(rng.Intn(1000)) + 1
			fl := flows[rng.Intn(len(flows))]
			switch fl.step {
			case 0:
				syn, h := mkSummary("10.1.1.1", "192.0.2.7", fl.port, 443, pkt.TCPSyn, uint32(fl.port), 0)
				if tbl.Process(syn, now, h, &m) {
					return false // SYN can never complete
				}
				fl.step, fl.t1, fl.reset = 1, now, false
			case 1:
				if rng.Intn(8) == 0 { // abort sometimes
					rst, h := mkSummary("10.1.1.1", "192.0.2.7", fl.port, 443, pkt.TCPRst, 0, 0)
					tbl.Process(rst, now, h, &m)
					fl.step = 0
					continue
				}
				sa, h := mkSummary("192.0.2.7", "10.1.1.1", 443, fl.port, pkt.TCPSyn|pkt.TCPAck, 7, uint32(fl.port)+1)
				if tbl.Process(sa, now, h, &m) {
					return false
				}
				fl.step, fl.t2 = 2, now
			case 2:
				ack, h := mkSummary("10.1.1.1", "192.0.2.7", fl.port, 443, pkt.TCPAck, uint32(fl.port)+1, 8)
				if !tbl.Process(ack, now, h, &m) {
					return false // valid ACK must complete
				}
				if m.External != fl.t2-fl.t1 || m.Internal != now-fl.t2 {
					return false
				}
				completed++
				fl.step = 0
			}
			if tbl.Len() < 0 || tbl.Len() > 256 {
				return false
			}
		}
		st := tbl.Stats()
		return st.Completed == uint64(completed) &&
			int(st.SYNs) >= completed &&
			st.Occupancy == uint64(tbl.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineWithTSSink(t *testing.T) {
	// The engine runs the TS tracker beside the handshake table when a
	// TSSink is configured.
	pool := nic.NewMempool(256, 2048)
	port, err := nic.NewPort(nic.PortConfig{Queues: 2, QueueDepth: 128, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var samples []TSSample
	eng, err := NewEngine(EngineConfig{
		Port: port,
		Sink: SinkFunc(func(*Measurement) {}),
		TSSink: TSSinkFunc(func(s *TSSample) {
			mu.Lock()
			samples = append(samples, *s)
			mu.Unlock()
		}),
		Table:   TableConfig{Capacity: 128},
		TSTable: TSConfig{Capacity: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx) }()

	// One data packet + its echo, with timestamp options.
	var opt [pkt.TimestampOptionLen]byte
	buildTS := func(src, dst string, sp, dp uint16, tsval, tsecr uint32) []byte {
		spec := &pkt.TCPFrameSpec{
			SrcMAC: pkt.MAC{1}, DstMAC: pkt.MAC{2},
			Src: netip.MustParseAddr(src), Dst: netip.MustParseAddr(dst),
			SrcPort: sp, DstPort: dp, Flags: pkt.TCPAck, Seq: 1, Ack: 1,
			Options: pkt.PutTimestampOption(opt[:], tsval, tsecr),
		}
		buf := make([]byte, 128)
		n, err := pkt.BuildTCPFrame(buf, spec)
		if err != nil {
			t.Fatal(err)
		}
		return buf[:n]
	}
	port.Inject(buildTS("10.0.0.1", "192.0.2.1", 5000, 443, 100, 0), 1000)
	port.Inject(buildTS("192.0.2.1", "10.0.0.1", 443, 5000, 900, 100), 46000)

	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(samples)
		mu.Unlock()
		if n >= 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no TS sample")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	<-done
	if samples[0].RTT != 45000 {
		t.Fatalf("RTT = %d", samples[0].RTT)
	}
}

func BenchmarkProcessHandshake(b *testing.B) {
	tbl := NewHandshakeTable(TableConfig{Capacity: 1 << 16})
	var m Measurement
	syn, h := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPSyn, 100, 0)
	synack, _ := mkSummary("192.0.2.1", "10.0.0.1", 443, 40000, pkt.TCPSyn|pkt.TCPAck, 900, 101)
	ack, _ := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPAck, 101, 901)
	b.ReportAllocs()
	ts := int64(0)
	for i := 0; i < b.N; i++ {
		ts += 3
		tbl.Process(syn, ts, h, &m)
		tbl.Process(synack, ts+1, h, &m)
		tbl.Process(ack, ts+2, h, &m)
	}
}

func BenchmarkProcessMidstream(b *testing.B) {
	// The common case on a real link: established-flow ACKs that miss the
	// table. This is the negative-lookup fast path.
	tbl := NewHandshakeTable(TableConfig{Capacity: 1 << 16})
	var m Measurement
	ack, h := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPAck, 101, 901)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl.Process(ack, int64(i), h, &m)
	}
}
