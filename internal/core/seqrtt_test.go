package core

import (
	"net/netip"
	"testing"

	"ruru/internal/pkt"
)

// mkDataSummary builds a parsed TCP packet carrying payloadLen bytes of
// stream data.
func mkDataSummary(src, dst string, sp, dp uint16, flags uint8, seq, ack uint32, payloadLen int) (*pkt.Summary, uint32) {
	s, h := mkSummary(src, dst, sp, dp, flags, seq, ack)
	if payloadLen > 0 {
		s.Payload = make([]byte, payloadLen)
	}
	return s, h
}

func TestSeqTrackerBasicDataAck(t *testing.T) {
	tr := NewSeqTracker(SeqConfig{Capacity: 64, Queue: 2})
	var sample SeqSample
	var loss LossEvent

	// A sends 100 bytes [1000,1100) at t=1000.
	a, h := mkDataSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 1000, 1, 100)
	if s, l := tr.Process(a, 1000, h, &sample, &loss); s || l {
		t.Fatal("data segment produced a sample or loss event")
	}
	if tr.Stats().Inserted != 1 || tr.Len() != 1 {
		t.Fatalf("stats = %+v", tr.Stats())
	}
	// B's cumulative ACK 1100 covers the edge at t=31000 → RTT 30000 for
	// B's side of the path.
	b, h2 := mkDataSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPAck, 1, 1100, 0)
	if h2 != h {
		t.Fatal("hash asymmetry")
	}
	s, l := tr.Process(b, 31000, h, &sample, &loss)
	if !s || l {
		t.Fatalf("ack: sample=%v loss=%v", s, l)
	}
	if sample.RTT != 30000 || sample.At != 31000 || sample.Queue != 2 || sample.OneDir {
		t.Fatalf("sample = %+v", sample)
	}
	if sample.Responder != netip.MustParseAddr("192.0.2.1") || sample.ResponderPort != 443 {
		t.Fatalf("responder = %v:%d", sample.Responder, sample.ResponderPort)
	}
	if st := tr.Stats(); st.Samples != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSeqTrackerDelayedAckMatchesNewestEdge(t *testing.T) {
	tr := NewSeqTracker(SeqConfig{Capacity: 64})
	var sample SeqSample
	var loss LossEvent
	a1, h := mkDataSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 1000, 1, 100)
	tr.Process(a1, 1000, h, &sample, &loss)
	a2, _ := mkDataSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 1100, 1, 100)
	tr.Process(a2, 2000, h, &sample, &loss)
	// One delayed ACK covers both segments: the newest edge (the segment
	// that triggered the ACK) gives the sample; both edges are consumed.
	b, _ := mkDataSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPAck, 1, 1200, 0)
	if s, _ := tr.Process(b, 3000, h, &sample, &loss); !s {
		t.Fatal("delayed ack not matched")
	}
	if sample.RTT != 1000 {
		t.Fatalf("RTT = %d, want 1000 (newest covered edge)", sample.RTT)
	}
	// Re-sending the same cumulative ACK is a duplicate, not a sample.
	s, l := tr.Process(b, 4000, h, &sample, &loss)
	if s {
		t.Fatal("repeated ack re-sampled a consumed edge")
	}
	if !l || loss.Kind != LossDupACK {
		t.Fatalf("dupack not classified: l=%v loss=%+v", l, loss)
	}
}

func TestSeqTrackerRetransFastVsRTO(t *testing.T) {
	tr := NewSeqTracker(SeqConfig{Capacity: 64}) // default 200ms threshold
	var sample SeqSample
	var loss LossEvent
	a, h := mkDataSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 1000, 1, 100)
	tr.Process(a, 1000, h, &sample, &loss)
	// Re-sent 50ms later: fast retransmit.
	if _, l := tr.Process(a, 50e6, h, &sample, &loss); !l {
		t.Fatal("retransmission not classified")
	}
	if loss.Kind != LossRetrans || loss.Src != netip.MustParseAddr("10.0.0.1") {
		t.Fatalf("loss = %+v", loss)
	}
	// Karn's rule: the ACK of a re-sent range must not become a sample.
	b, _ := mkDataSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPAck, 1, 1100, 0)
	if s, _ := tr.Process(b, 60e6, h, &sample, &loss); s {
		t.Fatal("retransmitted range sampled")
	}
	// New range, re-sent 300ms later: RTO class.
	a2, _ := mkDataSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 1100, 1, 100)
	tr.Process(a2, 70e6, h, &sample, &loss)
	if _, l := tr.Process(a2, 70e6+300e6, h, &sample, &loss); !l {
		t.Fatal("RTO retransmission not classified")
	}
	if loss.Kind != LossRTO {
		t.Fatalf("loss = %+v", loss)
	}
	if st := tr.Stats(); st.Retrans != 1 || st.RTO != 1 || st.Samples != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSeqTrackerDupAckCounting(t *testing.T) {
	tr := NewSeqTracker(SeqConfig{Capacity: 64})
	var sample SeqSample
	var loss LossEvent
	a, h := mkDataSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 1000, 1, 100)
	tr.Process(a, 1000, h, &sample, &loss)
	ack := func(v uint32, ts int64) (bool, bool) {
		b, _ := mkDataSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPAck, 1, v, 0)
		return tr.Process(b, ts, h, &sample, &loss)
	}
	ack(1050, 2000) // partial ack: covers nothing, establishes lastAck
	if _, l := ack(1050, 3000); !l || loss.Kind != LossDupACK {
		t.Fatal("first dup not counted")
	}
	if _, l := ack(1050, 4000); !l {
		t.Fatal("second dup not counted")
	}
	if _, l := ack(1100, 5000); l {
		t.Fatal("advancing ack counted as dup")
	}
	if st := tr.Stats(); st.DupACK != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSeqTrackerLoneSYNRSTNeverEnters pins the regression from the
// handshake table's PR-2 bug in the new tracker: control-only flows — a
// lone SYN|RST probe, bare SYNs, SYN-ACKs, pure ACKs, RSTs — must never
// occupy a tracker slot. Only stream data creates state.
func TestSeqTrackerLoneSYNRSTNeverEnters(t *testing.T) {
	tr := NewSeqTracker(SeqConfig{Capacity: 64})
	var sample SeqSample
	var loss LossEvent
	for _, tc := range []struct {
		name  string
		flags uint8
	}{
		{"syn_rst", pkt.TCPSyn | pkt.TCPRst},
		{"syn", pkt.TCPSyn},
		{"synack", pkt.TCPSyn | pkt.TCPAck},
		{"rst", pkt.TCPRst},
		{"pure_ack", pkt.TCPAck},
	} {
		s, h := mkDataSummary("10.0.0.9", "192.0.2.9", 6000, 80, tc.flags, 7, 7, 0)
		gotS, gotL := tr.Process(s, 1000, h, &sample, &loss)
		if gotS || gotL {
			t.Fatalf("%s: produced output", tc.name)
		}
		if tr.Len() != 0 {
			t.Fatalf("%s: entered the tracker", tc.name)
		}
	}
	// A SYN carrying payload (TFO-style) must also stay out: SYN space is
	// the handshake table's.
	s, h := mkDataSummary("10.0.0.9", "192.0.2.9", 6000, 80, pkt.TCPSyn|pkt.TCPRst, 7, 7, 10)
	tr.Process(s, 1000, h, &sample, &loss)
	if tr.Len() != 0 {
		t.Fatal("SYN with payload entered the tracker")
	}
}

func TestSeqTrackerRSTClearsState(t *testing.T) {
	tr := NewSeqTracker(SeqConfig{Capacity: 64})
	var sample SeqSample
	var loss LossEvent
	a, h := mkDataSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 1000, 1, 100)
	tr.Process(a, 1000, h, &sample, &loss)
	if tr.Len() != 1 {
		t.Fatal("flow not tracked")
	}
	// The RST's own ACK may still close a sample before teardown.
	rst, _ := mkDataSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPRst|pkt.TCPAck, 1, 1100, 0)
	if s, _ := tr.Process(rst, 4000, h, &sample, &loss); !s {
		t.Fatal("RST ack not matched")
	}
	if sample.RTT != 3000 {
		t.Fatalf("RTT = %d", sample.RTT)
	}
	if tr.Len() != 0 {
		t.Fatal("RST did not clear state")
	}
}

func TestSeqTrackerWraparound(t *testing.T) {
	tr := NewSeqTracker(SeqConfig{Capacity: 64})
	var sample SeqSample
	var loss LossEvent
	// Segment [0xFFFFFF00, 0x100) wraps the sequence space.
	a, h := mkDataSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 0xFFFFFF00, 1, 0x200)
	tr.Process(a, 1000, h, &sample, &loss)
	b, _ := mkDataSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPAck, 1, 0x100, 0)
	if s, _ := tr.Process(b, 2500, h, &sample, &loss); !s {
		t.Fatal("wrapped edge not covered")
	}
	if sample.RTT != 1500 {
		t.Fatalf("RTT = %d", sample.RTT)
	}
	// Post-wrap data still advances, pre-wrap range is a retransmission.
	a2, _ := mkDataSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 0x100, 1, 0x100)
	if _, l := tr.Process(a2, 3000, h, &sample, &loss); l {
		t.Fatal("post-wrap data misclassified as retransmission")
	}
	old, _ := mkDataSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 0xFFFFFF80, 1, 0x40)
	if _, l := tr.Process(old, 4000, h, &sample, &loss); !l {
		t.Fatal("pre-wrap re-send not classified")
	}
}

func TestSeqTrackerOneDirection(t *testing.T) {
	tr := NewSeqTracker(SeqConfig{Capacity: 64, OneDirection: true})
	var sample SeqSample
	var loss LossEvent
	// Only A→B is visible. A's request at t=1000 records its current
	// cumulative ACK (500).
	a1, h := mkDataSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 1000, 500, 100)
	if s, _ := tr.Process(a1, 1000, h, &sample, &loss); s {
		t.Fatal("request sampled itself")
	}
	// A's next request acks 800: B's response arrived in between → the
	// loop closed, RTT = 5000-1000.
	a2, _ := mkDataSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 1100, 800, 100)
	if s, _ := tr.Process(a2, 5000, h, &sample, &loss); !s {
		t.Fatal("ack advance did not close the sample")
	}
	if !sample.OneDir || sample.RTT != 4000 {
		t.Fatalf("sample = %+v", sample)
	}
	if sample.Responder != netip.MustParseAddr("192.0.2.1") {
		t.Fatalf("responder = %v (want the invisible peer)", sample.Responder)
	}
	// A pure ACK advancing past the second request's recorded value
	// closes that sample too.
	a3, _ := mkDataSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 1200, 1200, 0)
	if s, _ := tr.Process(a3, 9000, h, &sample, &loss); !s {
		t.Fatal("pure-ack advance did not close the sample")
	}
	if sample.RTT != 4000 {
		t.Fatalf("RTT = %d", sample.RTT)
	}
	if st := tr.Stats(); st.Samples != 2 || st.OneDirSamples != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSeqTrackerOneDirectionTSecrAdvance(t *testing.T) {
	tr := NewSeqTracker(SeqConfig{Capacity: 64, OneDirection: true})
	var sample SeqSample
	var loss LossEvent
	mk := func(seq, ack, tsval, tsecr uint32, n int) (*pkt.Summary, uint32) {
		s, h := mkDataSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, seq, ack, n)
		var opt [pkt.TimestampOptionLen]byte
		s.TCP.Options = append([]byte(nil), pkt.PutTimestampOption(opt[:], tsval, tsecr)...)
		return s, h
	}
	// Request at t=1000 echoing B's TSval 700; ack never advances (B
	// responds with pure window updates the tap cannot see acked), but the
	// echoed TSecr does — the self-pairing fallback the ISSUE calls TSval
	// self-pairing.
	a1, h := mk(1000, 500, 10, 700, 100)
	tr.Process(a1, 1000, h, &sample, &loss)
	a2, _ := mk(1100, 500, 20, 900, 100)
	if s, _ := tr.Process(a2, 7000, h, &sample, &loss); !s {
		t.Fatal("tsecr advance did not close the sample")
	}
	if !sample.OneDir || sample.RTT != 6000 {
		t.Fatalf("sample = %+v", sample)
	}
}

func TestSeqTrackerDeferTS(t *testing.T) {
	tr := NewSeqTracker(SeqConfig{Capacity: 64, DeferTS: true})
	var sample SeqSample
	var loss LossEvent
	mkTS := func(src, dst string, sp, dp uint16, seq, ack uint32, n int) (*pkt.Summary, uint32) {
		s, h := mkDataSummary(src, dst, sp, dp, pkt.TCPAck, seq, ack, n)
		var opt [pkt.TimestampOptionLen]byte
		s.TCP.Options = append([]byte(nil), pkt.PutTimestampOption(opt[:], 10, 20)...)
		return s, h
	}
	// A timestamp-bearing flow: the TS tracker owns its RTT samples.
	a, h := mkTS("10.0.0.1", "192.0.2.1", 5000, 443, 1000, 1, 100)
	tr.Process(a, 1000, h, &sample, &loss)
	if tr.Stats().Inserted != 0 {
		t.Fatal("TS-bearing data registered an edge under DeferTS")
	}
	b, _ := mkTS("192.0.2.1", "10.0.0.1", 443, 5000, 1, 1100, 0)
	if s, _ := tr.Process(b, 2000, h, &sample, &loss); s {
		t.Fatal("TS-bearing flow double-counted")
	}
	// Loss classification is NOT deferred — the TS tracker has none.
	if _, l := tr.Process(a, 3000, h, &sample, &loss); !l || loss.Kind != LossRetrans {
		t.Fatalf("retransmission on TS flow not classified: %+v", loss)
	}
	// A no-TS flow beside it still samples normally.
	c, h2 := mkDataSummary("10.0.0.2", "192.0.2.2", 5000, 443, pkt.TCPAck, 1000, 1, 100)
	tr.Process(c, 1000, h2, &sample, &loss)
	d, _ := mkDataSummary("192.0.2.2", "10.0.0.2", 443, 5000, pkt.TCPAck, 1, 1100, 0)
	if s, _ := tr.Process(d, 4000, h2, &sample, &loss); !s {
		t.Fatal("no-TS flow not sampled under DeferTS")
	}
}

func TestSeqTrackerPendingWindowEviction(t *testing.T) {
	tr := NewSeqTracker(SeqConfig{Capacity: 64})
	var sample SeqSample
	var loss LossEvent
	const n = seqPendingSlots + 2
	var h uint32
	for i := uint32(0); i < n; i++ {
		a, hh := mkDataSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 1000+100*i, 1, 100)
		h = hh
		tr.Process(a, int64(1000+i), h, &sample, &loss)
	}
	// An ACK covering only the two rolled-out edges matches nothing and is
	// an advancing miss.
	b, _ := mkDataSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPAck, 1, 1200, 0)
	if s, _ := tr.Process(b, 2000, h, &sample, &loss); s {
		t.Fatal("evicted edge matched")
	}
	if tr.Stats().Unmatched != 0 {
		t.Fatalf("non-advancing ack counted unmatched: %+v", tr.Stats())
	}
	// Covering everything matches the newest retained edge.
	c, _ := mkDataSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPAck, 1, 1000+100*n, 0)
	if s, _ := tr.Process(c, 3000, h, &sample, &loss); !s {
		t.Fatal("retained edge missed")
	}
}

func TestSeqTrackerIdleEviction(t *testing.T) {
	tr := NewSeqTracker(SeqConfig{Capacity: 256, Timeout: 1000})
	var sample SeqSample
	var loss LossEvent
	for i := 0; i < 50; i++ {
		a, h := mkDataSummary("10.0.0.1", "192.0.2.1", uint16(5000+i), 443, pkt.TCPAck, 1000, 1, 10)
		tr.Process(a, int64(i), h, &sample, &loss)
	}
	if tr.Len() != 50 {
		t.Fatalf("len = %d", tr.Len())
	}
	tr.SweepAll(100_000)
	if tr.Len() != 0 {
		t.Fatalf("idle flows not evicted: %d", tr.Len())
	}
	if tr.Stats().Expired != 50 {
		t.Fatalf("stats = %+v", tr.Stats())
	}
}

func TestSeqTrackerZeroAlloc(t *testing.T) {
	tr := NewSeqTracker(SeqConfig{Capacity: 1 << 12})
	var sample SeqSample
	var loss LossEvent
	a, h := mkDataSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 1000, 1, 100)
	b, _ := mkDataSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPAck, 1, 1100, 0)
	ts := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		ts += 2
		a.TCP.Seq += 100
		b.TCP.Ack += 100
		tr.Process(a, ts, h, &sample, &loss)
		tr.Process(b, ts+1, h, &sample, &loss)
	})
	if allocs != 0 {
		t.Fatalf("Process allocates %v per packet pair", allocs)
	}
}

func BenchmarkSeqTrackerProcess(b *testing.B) {
	tr := NewSeqTracker(SeqConfig{Capacity: 1 << 15})
	var sample SeqSample
	var loss LossEvent
	data, h := mkDataSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 1000, 1, 100)
	ackp, _ := mkDataSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPAck, 1, 1100, 0)
	b.ReportAllocs()
	ts := int64(0)
	for i := 0; i < b.N; i++ {
		ts += 2
		data.TCP.Seq += 100
		ackp.TCP.Ack += 100
		tr.Process(data, ts, h, &sample, &loss)
		tr.Process(ackp, ts+1, h, &sample, &loss)
	}
}
