package core

import (
	"unsafe"

	"ruru/internal/pkt"
)

// Admitter is the bounded-memory admission gate the per-flow tables consult
// before allocating exact state (ROADMAP item 2: sketch-based flow state).
// When a table's Admit field is set, a new-flow insert no longer allocates
// unconditionally: the admitter decides, against a hard byte budget, whether
// the flow earns an exact record or lives sketch-only.
//
// The contract mirrors the tables' single-writer discipline: one Admitter
// instance belongs to one RSS queue, and every method except a concurrent
// reader's snapshot accessor (see internal/sketch) is called only from that
// queue's worker goroutine, in packet order:
//
//	Observe(pkt)            // once per parsed TCP packet, BEFORE Process
//	Admit(bytes)            // zero or more times, for the Observed packet's flow
//	Release(bytes, prom)    // when an exact record is removed, any later packet
//
// Observe accounts the packet's flow volume in the sketch and retains the
// flow's identity, so Admit needs no re-hash: it rules on "the flow of the
// most recently Observed packet". Admit charges entryBytes against the
// budget and reports whether the flow was let in and whether it came through
// the elephant (promotion) path; a refusal is counted SketchOnlyFlows.
// Release returns the bytes when the record is freed (completion, abort,
// eviction) and balances Promoted with Demoted.
type Admitter interface {
	// Observe accounts one parsed TCP packet in the sketch tier.
	Observe(s *pkt.Summary)
	// Admit asks to allocate entryBytes of exact state for the flow of
	// the last Observed packet. promoted reports the elephant path.
	Admit(entryBytes int64) (ok, promoted bool)
	// Release returns entryBytes of exact state to the budget; promoted
	// must echo what Admit returned for this record.
	Release(entryBytes int64, promoted bool)
	// Publish makes heavy-hitter/stats state visible to concurrent
	// readers. Called at burst boundaries (with force=false, the tier may
	// throttle) and once at worker shutdown (force=true).
	Publish(force bool)
	// Stats snapshots the sketch counters. Single-writer, like the
	// tables' Stats: the engine copies it into the per-queue stats cell.
	Stats() SketchStats
}

// SketchStats surfaces the accuracy cost of bounded memory — the induced
// error is measured, never silent. Counters are cumulative per queue;
// Engine.SketchStats aggregates (sums, except the error bounds which take
// the worst queue).
type SketchStats struct {
	// Promoted counts exact-table admissions that went through the
	// elephant path (the flow's sketched volume crossed the heavy-hitter
	// threshold); Demoted counts releases of promoted records, so
	// Promoted-Demoted is the live promoted population.
	Promoted uint64
	Demoted  uint64
	// SketchOnlyFlows counts admission refusals: flow-state allocation
	// attempts that stayed sketch-only because the byte budget was
	// exhausted. Event-counted, like TableFull: a flow retrying its SYN
	// against a full budget counts once per attempt.
	SketchOnlyFlows uint64
	// EpsilonBytes is the count-min error bound εN in bytes (ε = e/width,
	// N = total bytes sketched): any volume estimate overshoots the true
	// volume by at most this, with probability 1-δ per query (δ = e^-depth).
	EpsilonBytes uint64
	// CollisionDepth is the expected number of distinct flows sharing one
	// sketch counter (distinct flows / width, rounded up) — the "how
	// crowded is the sketch" gauge operators watch before EpsilonBytes
	// grows teeth.
	CollisionDepth uint64
	// LiveBytes is exact-tier state currently charged against the budget,
	// SketchBytes the fixed sketch overhead, BudgetBytes the hard cap
	// (LiveBytes+SketchBytes never exceeds it).
	LiveBytes   int64
	SketchBytes int64
	BudgetBytes int64
}

// Per-record budget charges: the in-memory size of one slot in each exact
// table. Sizeof, not a hand-maintained constant, so the charge tracks the
// structs as they evolve.
var (
	// HandshakeEntryBytes is the budget charge for one handshake-table slot.
	HandshakeEntryBytes = int64(unsafe.Sizeof(entry{}))
	// TSEntryBytes is the budget charge for one timestamp-tracker slot.
	TSEntryBytes = int64(unsafe.Sizeof(tsEntry{}))
	// SeqEntryBytes is the budget charge for one seq-tracker slot.
	SeqEntryBytes = int64(unsafe.Sizeof(seqEntry{}))
)
