package core

import (
	"net/netip"
	"testing"

	"ruru/internal/pkt"
)

// mkTSSummary builds a parsed TCP packet carrying a timestamp option.
func mkTSSummary(src, dst string, sp, dp uint16, flags uint8, tsval, tsecr uint32) (*pkt.Summary, uint32) {
	s, h := mkSummary(src, dst, sp, dp, flags, 1, 1)
	var opt [pkt.TimestampOptionLen]byte
	s.TCP.Options = append([]byte(nil), pkt.PutTimestampOption(opt[:], tsval, tsecr)...)
	return s, h
}

func TestTSTrackerBasicEcho(t *testing.T) {
	tr := NewTSTracker(TSConfig{Capacity: 64, Queue: 2})
	var sample TSSample

	// A (10.0.0.1) sends TSval 100 at t=1000.
	a, h := mkTSSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 100, 50)
	if tr.Process(a, 1000, h, &sample) {
		t.Fatal("first packet produced a sample")
	}
	// B echoes TSecr=100 at t=31000 → RTT 30000 for B's side.
	b, h2 := mkTSSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPAck, 900, 100)
	if h2 != h {
		t.Fatal("hash asymmetry")
	}
	if !tr.Process(b, 31000, h, &sample) {
		t.Fatal("echo not matched")
	}
	if sample.RTT != 30000 {
		t.Fatalf("RTT = %d", sample.RTT)
	}
	if sample.Echoer != netip.MustParseAddr("192.0.2.1") || sample.EchoerPort != 443 {
		t.Fatalf("echoer = %v:%d", sample.Echoer, sample.EchoerPort)
	}
	if sample.Queue != 2 || sample.At != 31000 {
		t.Fatalf("sample = %+v", sample)
	}
	// A echoes B's TSval 900 at t=40000 → RTT for A's side = 9000.
	a2, _ := mkTSSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 101, 900)
	if !tr.Process(a2, 40000, h, &sample) {
		t.Fatal("reverse echo not matched")
	}
	if sample.RTT != 9000 || sample.Echoer != netip.MustParseAddr("10.0.0.1") {
		t.Fatalf("reverse sample = %+v", sample)
	}
}

func TestTSTrackerFirstEchoOnly(t *testing.T) {
	tr := NewTSTracker(TSConfig{Capacity: 64})
	var sample TSSample
	a, h := mkTSSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 100, 1)
	tr.Process(a, 1000, h, &sample)
	b1, _ := mkTSSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPAck, 900, 100)
	if !tr.Process(b1, 2000, h, &sample) {
		t.Fatal("first echo missed")
	}
	// A duplicate/delayed echo of the same TSval must NOT re-sample.
	b2, _ := mkTSSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPAck, 901, 100)
	if tr.Process(b2, 9000, h, &sample) {
		t.Fatal("second echo of same TSval sampled")
	}
	if tr.Stats().Unmatched == 0 {
		t.Fatal("duplicate echo not counted unmatched")
	}
}

func TestTSTrackerDuplicateTSvalKeepsFirst(t *testing.T) {
	// Retransmission carries the same TSval; RTT must measure from the
	// FIRST transmission.
	tr := NewTSTracker(TSConfig{Capacity: 64})
	var sample TSSample
	a1, h := mkTSSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 100, 1)
	tr.Process(a1, 1000, h, &sample)
	tr.Process(a1, 5000, h, &sample) // retransmission, same tsval
	b, _ := mkTSSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPAck, 900, 100)
	if !tr.Process(b, 8000, h, &sample) {
		t.Fatal("echo missed")
	}
	if sample.RTT != 7000 {
		t.Fatalf("RTT = %d, want 7000 (from first transmission)", sample.RTT)
	}
}

func TestTSTrackerPendingWindowEviction(t *testing.T) {
	// Only the last tsPendingSlots values per direction stay pending.
	tr := NewTSTracker(TSConfig{Capacity: 64})
	var sample TSSample
	const n = tsPendingSlots + 2
	var h uint32
	for i := uint32(0); i < n; i++ {
		a, hh := mkTSSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 100+i, 1)
		h = hh
		tr.Process(a, int64(1000+i), h, &sample)
	}
	// The oldest two values rolled out of the window.
	old, _ := mkTSSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPAck, 900, 100)
	if tr.Process(old, 2000, h, &sample) {
		t.Fatal("evicted TSval matched")
	}
	old2, _ := mkTSSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPAck, 901, 101)
	if tr.Process(old2, 2000, h, &sample) {
		t.Fatal("second evicted TSval matched")
	}
	newer, _ := mkTSSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPAck, 902, 100+n-1)
	if !tr.Process(newer, 2000, h, &sample) {
		t.Fatal("recent TSval missed")
	}
}

func TestTSTrackerNoTimestampOption(t *testing.T) {
	tr := NewTSTracker(TSConfig{Capacity: 64})
	var sample TSSample
	a, h := mkSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 1, 1)
	if tr.Process(a, 1000, h, &sample) {
		t.Fatal("sample from packet without TS option")
	}
	if tr.Stats().NoTS != 1 || tr.Len() != 0 {
		t.Fatalf("stats = %+v", tr.Stats())
	}
}

func TestTSTrackerFINKeepsStateRSTClears(t *testing.T) {
	tr := NewTSTracker(TSConfig{Capacity: 64})
	var sample TSSample
	a, h := mkTSSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 100, 1)
	tr.Process(a, 1000, h, &sample)
	if tr.Len() != 1 {
		t.Fatal("flow not tracked")
	}
	// FIN from B echoes 100 (a sample) but must NOT tear down: echoes of
	// in-flight segments are still arriving during the close handshake.
	fin, _ := mkTSSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPFin|pkt.TCPAck, 900, 100)
	if !tr.Process(fin, 4000, h, &sample) {
		t.Fatal("FIN echo not sampled")
	}
	if sample.RTT != 3000 {
		t.Fatalf("RTT = %d", sample.RTT)
	}
	if tr.Len() != 1 {
		t.Fatal("FIN cleared state prematurely")
	}
	// The client's ACK of the FIN echoes the FIN's tsval — the close
	// handshake itself yields one more client-side sample.
	ackFin, _ := mkTSSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 101, 900)
	if !tr.Process(ackFin, 6000, h, &sample) {
		t.Fatal("FIN-ACK echo not sampled")
	}
	if sample.RTT != 2000 {
		t.Fatalf("FIN-ACK RTT = %d", sample.RTT)
	}
	// RST aborts immediately.
	rst, _ := mkTSSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPRst, 902, 0)
	tr.Process(rst, 7000, h, &sample)
	if tr.Len() != 0 {
		t.Fatal("RST did not clear state")
	}
}

func TestTSTrackerIdleEviction(t *testing.T) {
	tr := NewTSTracker(TSConfig{Capacity: 256, Timeout: 1000})
	var sample TSSample
	for i := 0; i < 50; i++ {
		a, h := mkTSSummary("10.0.0.1", "192.0.2.1", uint16(5000+i), 443, pkt.TCPAck, 100, 1)
		tr.Process(a, int64(i), h, &sample)
	}
	if tr.Len() != 50 {
		t.Fatalf("len = %d", tr.Len())
	}
	tr.SweepAll(100_000)
	if tr.Len() != 0 {
		t.Fatalf("idle flows not evicted: %d", tr.Len())
	}
	if tr.Stats().Expired != 50 {
		t.Fatalf("stats = %+v", tr.Stats())
	}
}

func TestTSTrackerZeroAlloc(t *testing.T) {
	tr := NewTSTracker(TSConfig{Capacity: 1 << 12})
	var sample TSSample
	a, h := mkTSSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 100, 50)
	b, _ := mkTSSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPAck, 900, 100)
	ts := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		ts += 2
		tr.Process(a, ts, h, &sample)
		tr.Process(b, ts+1, h, &sample)
	})
	if allocs != 0 {
		t.Fatalf("Process allocates %v per packet pair", allocs)
	}
}

func TestCanonicalKeySymmetric(t *testing.T) {
	a := netip.MustParseAddr("10.0.0.1")
	b := netip.MustParseAddr("192.0.2.1")
	k1, fromA1 := canonicalKey(a, b, 5000, 443)
	k2, fromA2 := canonicalKey(b, a, 443, 5000)
	if k1 != k2 {
		t.Fatalf("keys differ: %v vs %v", k1, k2)
	}
	if fromA1 == fromA2 {
		t.Fatal("direction flags must differ")
	}
	// Same address, different ports.
	k3, _ := canonicalKey(a, a, 9, 5)
	k4, _ := canonicalKey(a, a, 5, 9)
	if k3 != k4 {
		t.Fatal("same-addr canonicalization broken")
	}
}

func BenchmarkTSTrackerProcess(b *testing.B) {
	tr := NewTSTracker(TSConfig{Capacity: 1 << 15})
	var sample TSSample
	a, h := mkTSSummary("10.0.0.1", "192.0.2.1", 5000, 443, pkt.TCPAck, 100, 50)
	e, _ := mkTSSummary("192.0.2.1", "10.0.0.1", 443, 5000, pkt.TCPAck, 900, 100)
	b.ReportAllocs()
	ts := int64(0)
	for i := 0; i < b.N; i++ {
		ts += 2
		tr.Process(a, ts, h, &sample)
		tr.Process(e, ts+1, h, &sample)
	}
}
