package core

import (
	"net/netip"

	"ruru/internal/pkt"
)

// SeqSample is one continuous RTT observation derived from data→ACK
// sequence matching. When host A's data segment ending at seq+len passes
// the tap at t1 and host B's cumulative ACK covering that edge passes at
// t2, then t2−t1 is the round trip between the tap and B — so, exactly
// like TSSample, the tap measures the *responder's* side of the path. This
// covers the flows the timestamp tracker cannot: middlebox-scrubbed and
// legacy paths that negotiate no TCP timestamp option.
//
// In OneDirection mode (asymmetric tap: only one side of the conversation
// is visible) the sample is instead a round-trip *response* latency in the
// sense of "Measuring Round-Trip Response Latencies Under Asymmetric
// Routing": visible-host data at t1, first visible packet whose ACK (or
// echoed TSecr) advances past the value recorded at t1 arriving at t2 —
// tap→peer→visible host→tap, peer think-time included. Such samples carry
// OneDir=true and reach storage tagged mode=onedir.
type SeqSample struct {
	// Responder is the host whose side of the path was measured (the
	// sender of the covering ACK; in OneDirection mode the invisible
	// peer); Peer is the other endpoint.
	Responder, Peer netip.Addr
	// ResponderPort and PeerPort complete the tuple.
	ResponderPort, PeerPort uint16
	// RTT is the measured round trip in nanoseconds; At the tap timestamp
	// of the packet that closed it.
	RTT int64
	At  int64
	// Queue is the observing RSS queue.
	Queue int
	// OneDir marks a one-direction-visible estimate (mode=onedir).
	OneDir bool
}

// LossKind classifies one loss/quality event.
type LossKind uint8

// Loss event classes. A re-sent sequence range whose gap to the prior
// transmission is below the RTO threshold is a fast retransmit (triggered
// by duplicate ACKs, roughly one RTT after the original); a larger gap
// means the sender's retransmission timeout fired. A pure ACK repeating
// the previous cumulative ACK is a duplicate ACK (the receiver signalling
// an out-of-order arrival).
const (
	LossRetrans LossKind = iota // fast retransmit
	LossRTO                     // timeout retransmit
	LossDupACK                  // duplicate cumulative ACK
)

// String returns the storage tag value for k.
func (k LossKind) String() string {
	switch k {
	case LossRetrans:
		return "retrans"
	case LossRTO:
		return "rto"
	default:
		return "dupack"
	}
}

// LossEvent is one classified loss/quality observation on a tracked flow.
// Src is the sender of the re-sent segment (or of the duplicate ACK).
type LossEvent struct {
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
	Kind             LossKind
	At               int64
	Queue            int
}

// SeqStats counts tracker outcomes. Samples includes OneDirSamples;
// Retrans+RTO+DupACK equals the loss events emitted.
type SeqStats struct {
	Packets       uint64 // TCP packets examined
	Inserted      uint64 // data edges registered
	Samples       uint64 // RTT samples produced (all modes)
	OneDirSamples uint64 // subset of Samples from OneDirection estimation
	Unmatched     uint64 // advancing ACKs that covered no pending edge
	Retrans       uint64 // fast-retransmit classifications
	RTO           uint64 // timeout-retransmit classifications
	DupACK        uint64 // duplicate cumulative ACKs
	Expired       uint64 // flow entries evicted idle
	TableFull     uint64 // flows not tracked: table at capacity
	Occupancy     uint64 // live flow entries (gauge)
}

// seqPendingSlots bounds outstanding data edges per direction per flow,
// the same discipline as tsPendingSlots: ACKs arrive one RTT after their
// data, older edges are overwritten and their (rare, late) ACKs counted
// Unmatched. Deep pipelines trade some sample loss for bounded memory.
const seqPendingSlots = 8

// seqEdge is one in-flight observation. In two-direction mode end is the
// segment's right edge (seq+len) an ACK must cover; in OneDirection mode
// end is the sender's cumulative ACK at send time and aux its TSecr, the
// values whose later advance closes the self-paired sample.
type seqEdge struct {
	end  uint32
	aux  uint32
	ts   int64
	used bool
}

// seqDir is one direction's state within a flow entry.
type seqDir struct {
	edges [seqPendingSlots]seqEdge
	pos   uint8
	// maxEnd is the highest right edge sent (valid when init): any data
	// segment at or below it is a retransmission.
	maxEnd uint32
	init   bool
	// lastAck is the direction's previous cumulative ACK (valid when
	// ackInit); repeating it in a pure ACK is a duplicate ACK.
	lastAck uint32
	ackInit bool
	// lastDataTS is the tap time of the direction's most recent data
	// segment, the fallback baseline for retransmit-gap classification
	// when the re-sent range's own edge has already been overwritten.
	lastDataTS int64
}

type seqEntry struct {
	// key is canonically oriented like tsEntry: the endpoint with the
	// lexicographically smaller (addr, port) is side A.
	key      FlowKey
	hash     uint32
	lastTS   int64
	state    entryState // stateEmpty or stateSYN (used as "live")
	promoted bool       // admitted through the sketch tier's elephant path
	a, b     seqDir
}

// SeqConfig configures a SeqTracker.
type SeqConfig struct {
	// Capacity is the number of flow slots (rounded to a power of two,
	// default 1<<15). Timeout evicts idle flows (default 60s). Queue is
	// recorded in samples and loss events.
	Capacity int
	Timeout  int64
	Queue    int
	// OneDirection switches the tracker to asymmetric-tap estimation:
	// samples are self-paired within the visible direction (see
	// SeqSample) instead of data→ACK matched across directions. Loss
	// classification is unchanged (it only needs the sending side).
	OneDirection bool
	// DeferTS suppresses RTT samples (not loss events) for packets
	// carrying a TCP timestamp option. Set when a TSTracker runs beside
	// this tracker so a flow measured by timestamp echoes is not
	// double-counted; leave unset in OneDirection mode, where the echo
	// direction is invisible and the timestamp tracker yields nothing.
	DeferTS bool
	// RTOThreshold is the retransmit-gap boundary in nanoseconds: a
	// re-sent range closer than this to its prior transmission is a fast
	// retransmit, farther is an RTO (default 200ms).
	RTOThreshold int64
	// Admit, when non-nil, gates new-flow inserts against the sketch
	// tier's byte budget (same contract as TableConfig.Admit).
	Admit Admitter
}

// SeqTracker measures continuous RTT from data→ACK sequence matching and
// classifies retransmissions for one RSS queue. Like HandshakeTable and
// TSTracker it is single-writer and allocation-free on the packet path.
type SeqTracker struct {
	slots   []seqEntry
	mask    uint32
	live    int
	maxLive int
	timeout int64
	queue   int
	oneDir  bool
	deferTS bool
	rtoGap  int64
	admit   Admitter
	stats   SeqStats

	sweepPos  uint32
	lastSweep int64
}

// NewSeqTracker creates a tracker from cfg.
func NewSeqTracker(cfg SeqConfig) *SeqTracker {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 1 << 15
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 60e9
	}
	rtoGap := cfg.RTOThreshold
	if rtoGap <= 0 {
		rtoGap = 200e6
	}
	return &SeqTracker{
		slots:   make([]seqEntry, n),
		mask:    uint32(n - 1),
		maxLive: n * 85 / 100,
		timeout: timeout,
		queue:   cfg.Queue,
		oneDir:  cfg.OneDirection,
		deferTS: cfg.DeferTS,
		rtoGap:  rtoGap,
		admit:   cfg.Admit,
	}
}

// Stats returns a snapshot of the tracker counters.
func (t *SeqTracker) Stats() SeqStats {
	s := t.stats
	s.Occupancy = uint64(t.live)
	return s
}

// Len returns live flow entries.
func (t *SeqTracker) Len() int { return t.live }

// seqLE reports a ≤ b in 32-bit sequence space (RFC 1982 style).
func seqLE(a, b uint32) bool { return int32(b-a) >= 0 }

// seqLT reports a < b in 32-bit sequence space.
func seqLT(a, b uint32) bool { return int32(b-a) > 0 }

func (t *SeqTracker) find(hash uint32, key FlowKey) (uint32, bool) {
	i := mix(hash) & t.mask
	for {
		s := &t.slots[i]
		if s.state == stateEmpty {
			return i, false
		}
		if s.hash == hash && s.key == key {
			return i, true
		}
		i = (i + 1) & t.mask
	}
}

func (t *SeqTracker) remove(i uint32) {
	if t.admit != nil {
		t.admit.Release(SeqEntryBytes, t.slots[i].promoted)
	}
	t.live--
	for {
		t.slots[i] = seqEntry{}
		j := i
		for {
			j = (j + 1) & t.mask
			s := &t.slots[j]
			if s.state == stateEmpty {
				return
			}
			home := mix(s.hash) & t.mask
			if (j-home)&t.mask >= (j-i)&t.mask {
				t.slots[i] = *s
				i = j
				break
			}
		}
	}
}

// Process examines one parsed TCP packet. When it closes an RTT sample the
// sample is stored in *out and the first result is true; when it is
// classified as a loss/quality event the event is stored in *loss and the
// second result is true (a packet can produce both: a retransmitted
// segment whose ACK also covers reverse-direction data). rssHash must be
// direction-independent (symmetric RSS), as for the handshake table.
//
// SYN segments carry no stream data and are owned by the handshake table;
// together with the create-on-data-only rule below this guarantees a flow
// seen only as SYN, SYN|ACK or RST (the lone SYN|RST probe pattern) never
// occupies a tracker slot.
//
//ruru:noalloc
func (t *SeqTracker) Process(s *pkt.Summary, ts int64, rssHash uint32, out *SeqSample, loss *LossEvent) (sample, lossEv bool) {
	t.stats.Packets++
	t.maybeSweep(ts)

	tcp := &s.TCP
	if tcp.SYN() {
		return false, false
	}
	payload := len(s.Payload)
	key, fromA := canonicalKey(s.Src(), s.Dst(), tcp.SrcPort, tcp.DstPort)

	idx, found := t.find(rssHash, key)
	if !found {
		// Only a data segment creates state: a pure ACK or RST on an
		// unknown flow has nothing to match and would only burn a slot.
		if payload == 0 || tcp.RST() {
			return false, false
		}
		if t.live >= t.maxLive {
			t.stats.TableFull++
			return false, false
		}
		var promoted bool
		if t.admit != nil {
			ok, prom := t.admit.Admit(SeqEntryBytes)
			if !ok {
				return false, false
			}
			promoted = prom
		}
		t.slots[idx] = seqEntry{key: key, hash: rssHash, lastTS: ts, state: stateSYN, promoted: promoted}
		t.live++
	}
	e := &t.slots[idx]
	e.lastTS = ts

	dir, rev := &e.a, &e.b
	if !fromA {
		dir, rev = &e.b, &e.a
	}

	// DeferTS: a packet carrying the timestamp option belongs to the
	// timestamp tracker's sample stream; suppress the seq RTT machinery
	// for it but keep loss classification (the TS tracker has none).
	_, tsecr, hasTS := tcp.TimestampOption()
	rttOn := !(t.deferTS && hasTS)

	// Loss classification first, so a retransmitted range never registers
	// (or keeps) an edge — retransmission ambiguity would otherwise turn
	// into a wrong sample (Karn's rule, applied at the tap).
	retrans := false
	if payload > 0 {
		end := tcp.Seq + uint32(payload)
		if dir.init && seqLE(end, dir.maxEnd) {
			retrans = true
			lossEv = t.classifyRetrans(dir, end, ts, s, tcp, loss)
		}
	}

	// Duplicate-ACK detection on pure ACKs (data and FIN/RST segments
	// legitimately repeat the cumulative ACK). Window updates also land
	// here — acceptable for a passive quality signal.
	if tcp.ACK() {
		if payload == 0 && !tcp.FIN() && !tcp.RST() && dir.ackInit && tcp.Ack == dir.lastAck {
			t.stats.DupACK++
			*loss = LossEvent{
				Src: s.Src(), Dst: s.Dst(),
				SrcPort: tcp.SrcPort, DstPort: tcp.DstPort,
				Kind: LossDupACK, At: ts, Queue: t.queue,
			}
			lossEv = true
		}
		dir.lastAck = tcp.Ack
		dir.ackInit = true
	}

	// RTT matching.
	if rttOn {
		if t.oneDir {
			if tcp.ACK() && t.matchOneDir(dir, tcp.Ack, tsecr, hasTS, ts, s, tcp, out) {
				sample = true
			}
		} else if tcp.ACK() && t.match(rev, tcp.Ack, ts, s, tcp, out) {
			sample = true
		}
	}

	if tcp.RST() {
		// Abort: no further ACKs will come; drop state immediately.
		t.remove(idx)
		return sample, lossEv
	}

	// Register this segment's edge for future matching. FINs consume a
	// sequence number but carry no data worth pairing; idle eviction
	// reclaims the entry after the close handshake.
	if payload > 0 {
		end := tcp.Seq + uint32(payload)
		if !dir.init || seqLT(dir.maxEnd, end) {
			dir.maxEnd = end
			dir.init = true
		}
		dir.lastDataTS = ts
		if rttOn && !retrans {
			edge := seqEdge{end: end, ts: ts, used: true}
			if t.oneDir {
				// Self-pairing: remember the values whose advance will
				// close this sample, not the segment's own right edge.
				edge.end = tcp.Ack
				edge.aux = 0
				if hasTS {
					edge.aux = tsecr
				}
			}
			dir.edges[dir.pos] = edge
			dir.pos = (dir.pos + 1) % seqPendingSlots
			t.stats.Inserted++
		}
	}
	return sample, lossEv
}

// classifyRetrans classifies a re-sent range by its gap to the prior
// transmission: below the RTO threshold is a fast retransmit, above it the
// sender's timeout fired. The range's own pending edge (exact right-edge
// match) gives the precise baseline and is invalidated — its eventual ACK
// must not become a sample; an overwritten edge falls back to the
// direction's last data time.
func (t *SeqTracker) classifyRetrans(dir *seqDir, end uint32, ts int64, s *pkt.Summary, tcp *pkt.TCP, loss *LossEvent) bool {
	prior := dir.lastDataTS
	if !t.oneDir {
		for i := range dir.edges {
			ed := &dir.edges[i]
			if ed.used && ed.end == end {
				prior = ed.ts
				ed.used = false
				break
			}
		}
	}
	kind := LossRetrans
	if prior == 0 || ts-prior >= t.rtoGap {
		kind = LossRTO
		t.stats.RTO++
	} else {
		t.stats.Retrans++
	}
	*loss = LossEvent{
		Src: s.Src(), Dst: s.Dst(),
		SrcPort: tcp.SrcPort, DstPort: tcp.DstPort,
		Kind: kind, At: ts, Queue: t.queue,
	}
	return true
}

// match looks for pending edges in the opposite direction covered by the
// cumulative ACK. A delayed ACK covers several segments at once; the
// newest covered edge is the one that triggered it, so it gives the
// tightest sample — one sample per ACK, all covered edges cleared.
func (t *SeqTracker) match(rev *seqDir, ack uint32, ts int64, s *pkt.Summary, tcp *pkt.TCP, out *SeqSample) bool {
	var newest *seqEdge
	for i := range rev.edges {
		ed := &rev.edges[i]
		if ed.used && seqLE(ed.end, ack) {
			if newest == nil || ed.ts > newest.ts {
				newest = ed
			}
			ed.used = false
		}
	}
	if newest == nil {
		// Only an advancing ACK that found nothing is a miss; the steady
		// stream of repeated ACKs legitimately covers no pending edge.
		if rev.init && seqLT(rev.maxEnd, ack) {
			t.stats.Unmatched++
		}
		return false
	}
	*out = SeqSample{
		Responder:     s.Src(),
		Peer:          s.Dst(),
		ResponderPort: tcp.SrcPort,
		PeerPort:      tcp.DstPort,
		RTT:           ts - newest.ts,
		At:            ts,
		Queue:         t.queue,
	}
	t.stats.Samples++
	return true
}

// matchOneDir closes self-paired samples within the visible direction: an
// edge recorded at send time is covered when the sender's cumulative ACK —
// or, on timestamp-bearing flows, its echoed TSecr — has advanced past the
// recorded value, meaning the invisible peer's response completed the
// loop. One sample per trigger packet, newest covered edge wins.
func (t *SeqTracker) matchOneDir(dir *seqDir, ack, tsecr uint32, hasTS bool, ts int64, s *pkt.Summary, tcp *pkt.TCP, out *SeqSample) bool {
	var newest *seqEdge
	for i := range dir.edges {
		ed := &dir.edges[i]
		if !ed.used {
			continue
		}
		advanced := seqLT(ed.end, ack)
		if !advanced && hasTS && ed.aux != 0 {
			advanced = seqLT(ed.aux, tsecr)
		}
		if advanced {
			if newest == nil || ed.ts > newest.ts {
				newest = ed
			}
			ed.used = false
		}
	}
	if newest == nil {
		return false
	}
	*out = SeqSample{
		Responder:     s.Dst(), // the invisible peer is the measured side
		Peer:          s.Src(),
		ResponderPort: tcp.DstPort,
		PeerPort:      tcp.SrcPort,
		RTT:           ts - newest.ts,
		At:            ts,
		Queue:         t.queue,
		OneDir:        true,
	}
	t.stats.Samples++
	t.stats.OneDirSamples++
	return true
}

func (t *SeqTracker) maybeSweep(now int64) {
	if t.lastSweep == 0 {
		t.lastSweep = now
		return
	}
	interval := t.timeout / int64(len(t.slots)/sweepChunk+1)
	if interval < 1 {
		interval = 1
	}
	if now-t.lastSweep < interval {
		return
	}
	t.lastSweep = now
	end := t.sweepPos + sweepChunk
	for i := t.sweepPos; i < end; i++ {
		t.evictIdleAt(i&t.mask, now)
	}
	t.sweepPos = end & t.mask
}

func (t *SeqTracker) evictIdleAt(idx uint32, now int64) {
	for {
		s := &t.slots[idx]
		if s.state == stateEmpty || now-s.lastTS <= t.timeout {
			return
		}
		t.stats.Expired++
		t.remove(idx)
	}
}

// SweepAll synchronously evicts all idle flows.
func (t *SeqTracker) SweepAll(now int64) {
	for i := uint32(0); i < uint32(len(t.slots)); i++ {
		t.evictIdleAt(i, now)
	}
}
