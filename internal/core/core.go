// Package core implements Ruru's primary contribution: passive, flow-level
// end-to-end latency measurement from TCP three-way handshakes observed at a
// tap (paper §2, Figure 1).
//
// For every TCP flow the engine records three timestamps: the first SYN, the
// following SYN-ACK, and the first valid ACK. With the tap between client C
// and server S:
//
//	external = t(SYN-ACK) - t(SYN)  — RTT between the tap and the server
//	internal = t(ACK) - t(SYN-ACK)  — RTT between the tap and the client
//	total    = internal + external  — full end-to-end RTT C↔S
//
// State lives in per-queue HandshakeTables indexed by the flow 4-tuple.
// Symmetric RSS guarantees both directions of a flow arrive on the same
// queue, so tables are single-writer and lock-free. Tables are fixed-size
// open-addressed arrays (linear probing with backward-shift deletion) and
// the processing path performs no heap allocation.
package core

import (
	"fmt"
	"net/netip"

	"ruru/internal/pkt"
)

// FlowKey identifies a TCP flow oriented client→server (the direction of the
// initial SYN). It is comparable and used as the handshake table key.
type FlowKey struct {
	Client, Server         netip.Addr
	ClientPort, ServerPort uint16
}

// String formats the key as "client:cport->server:sport".
func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d->%s:%d", k.Client, k.ClientPort, k.Server, k.ServerPort)
}

// Measurement is one completed handshake observation: the unit of data the
// rest of the pipeline (analytics, TSDB, frontends) consumes. Addresses are
// present here and removed by the analytics stage after geo enrichment, per
// the paper's privacy design.
type Measurement struct {
	Flow FlowKey
	IPv6 bool

	// Internal is the tap↔client RTT, External the tap↔server RTT, and
	// Total their sum (the full client↔server RTT), all in nanoseconds.
	Internal, External, Total int64

	// SYNTime, SYNACKTime and ACKTime are the three captured timestamps.
	SYNTime, SYNACKTime, ACKTime int64

	// SYNRetrans counts retransmitted SYNs observed before completion.
	SYNRetrans uint8
	// Queue is the RSS queue that observed the flow.
	Queue int
}

// TableStats is a snapshot of per-table outcomes. All counters are
// cumulative. The table itself is single-writer; for live cross-goroutine
// monitoring read the per-burst snapshots Engine.Stats publishes.
type TableStats struct {
	Packets       uint64 // TCP packets examined
	SYNs          uint64 // initial SYNs inserted
	SYNRetrans    uint64 // retransmitted SYNs for live entries
	SYNACKs       uint64 // SYN-ACKs matched to a pending SYN
	OrphanSYNACKs uint64 // SYN-ACKs with no pending SYN (midstream/asymmetric)
	Completed     uint64 // handshakes completed (measurements emitted)
	InvalidACKs   uint64 // ACKs that failed ISN validation for a pending flow
	MidstreamACKs uint64 // ACKs for flows not in the table (established traffic)
	Aborted       uint64 // entries removed by RST before completion
	Expired       uint64 // entries evicted incomplete (feeds SYN-flood signal)
	ExpiredAwait  uint64 // of Expired: had SYN only (no SYN-ACK ever seen)
	TableFull     uint64 // SYNs dropped because the table was at capacity
	Occupancy     uint64 // current live entries (gauge, not cumulative)
}

type entryState uint8

const (
	stateEmpty  entryState = iota
	stateSYN               // SYN seen, awaiting SYN-ACK
	stateSYNACK            // SYN-ACK seen, awaiting ACK
)

type entry struct {
	key       FlowKey
	synTS     int64
	synAckTS  int64
	lastTS    int64
	clientISN uint32
	serverISN uint32
	hash      uint32
	state     entryState
	retrans   uint8
	ipv6      bool
	promoted  bool // admitted through the sketch tier's elephant path
}

// TableConfig configures a HandshakeTable.
type TableConfig struct {
	// Capacity is the number of slots (rounded up to a power of two).
	// The table refuses new flows beyond ~85% occupancy. Default 1<<16.
	Capacity int
	// Timeout evicts handshakes with no progress for this many
	// nanoseconds (virtual tap clock). Default 10s.
	Timeout int64
	// Queue is recorded in emitted measurements.
	Queue int
	// OnExpire, when non-nil, is invoked for every entry evicted
	// incomplete: lastTS is the entry's last activity timestamp and
	// awaitingSYNACK is true when no SYN-ACK was ever seen (the
	// unanswered-SYN signal the flood detector consumes). Called from
	// the table's single-writer goroutine; must be fast or hand off.
	OnExpire func(lastTS int64, awaitingSYNACK bool)
	// Admit, when non-nil, gates new-flow inserts against a byte budget:
	// a refused flow allocates no entry and lives sketch-only. Must be
	// owned by the same goroutine as the table (see Admitter).
	Admit Admitter
}

// HandshakeTable tracks in-progress handshakes for one RSS queue.
// It is single-writer: exactly one goroutine may call Process/Sweep.
type HandshakeTable struct {
	slots    []entry
	mask     uint32
	live     int
	maxLive  int
	timeout  int64
	queue    int
	onExpire func(lastTS int64, awaitingSYNACK bool)
	admit    Admitter
	stats    TableStats

	sweepPos  uint32 // incremental sweep cursor
	lastSweep int64
}

// NewHandshakeTable creates a table from cfg.
func NewHandshakeTable(cfg TableConfig) *HandshakeTable {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 1 << 16
	}
	// Round up to a power of two.
	n := 1
	for n < capacity {
		n <<= 1
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 10e9
	}
	return &HandshakeTable{
		slots:    make([]entry, n),
		mask:     uint32(n - 1),
		maxLive:  n * 85 / 100,
		timeout:  timeout,
		queue:    cfg.Queue,
		onExpire: cfg.OnExpire,
		admit:    cfg.Admit,
	}
}

// Stats returns a snapshot of the table counters. Single-writer like
// Process: call it from the owning goroutine (or after processing stops).
// For live cross-goroutine monitoring use Engine.Stats, which reads the
// snapshots workers publish once per burst.
func (t *HandshakeTable) Stats() TableStats {
	s := t.stats
	s.Occupancy = uint64(t.live)
	return s
}

// Len returns the number of live entries.
func (t *HandshakeTable) Len() int { return t.live }

// mix finalizes the RSS hash into a table index seed. The RSS hash is
// already uniform, but mixing guards against pathological keys when the
// asymmetric-key ablation (E7) routes both directions differently.
func mix(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x7feb352d
	h ^= h >> 15
	h *= 0x846ca68b
	h ^= h >> 16
	return h
}

// find locates the slot index of key, or the first empty slot encountered.
func (t *HandshakeTable) find(hash uint32, key FlowKey) (idx uint32, found bool) {
	i := mix(hash) & t.mask
	for {
		s := &t.slots[i]
		if s.state == stateEmpty {
			return i, false
		}
		if s.hash == hash && s.key == key {
			return i, true
		}
		i = (i + 1) & t.mask
	}
}

// remove deletes slot i using backward-shift deletion, preserving probe
// chains without tombstones.
func (t *HandshakeTable) remove(i uint32) {
	if t.admit != nil {
		t.admit.Release(HandshakeEntryBytes, t.slots[i].promoted)
	}
	t.live--
	for {
		t.slots[i] = entry{}
		j := i
		for {
			j = (j + 1) & t.mask
			s := &t.slots[j]
			if s.state == stateEmpty {
				return
			}
			home := mix(s.hash) & t.mask
			// Can s legally move into the hole at i?
			if (j-home)&t.mask >= (j-i)&t.mask {
				t.slots[i] = *s
				i = j
				break
			}
		}
	}
}

// Process examines one parsed TCP packet with capture timestamp ts and RSS
// hash rssHash. If the packet completes a handshake, the resulting
// measurement is stored in *m and Process returns true.
func (t *HandshakeTable) Process(s *pkt.Summary, ts int64, rssHash uint32, m *Measurement) bool {
	t.stats.Packets++
	t.maybeSweep(ts)

	tcp := &s.TCP
	switch {
	case tcp.RST():
		// RST must be checked before the SYN branches: a SYN|RST packet
		// also satisfies IsSYN (SYN set, ACK clear) and used to insert or
		// restart a tracked flow, leaving the abort path unreachable and
		// the table corrupted by flows that can never complete.
		// Abort either orientation.
		key := FlowKey{Client: s.Src(), Server: s.Dst(), ClientPort: tcp.SrcPort, ServerPort: tcp.DstPort}
		if idx, found := t.find(rssHash, key); found {
			t.remove(idx)
			t.stats.Aborted++
			return false
		}
		rkey := FlowKey{Client: s.Dst(), Server: s.Src(), ClientPort: tcp.DstPort, ServerPort: tcp.SrcPort}
		if idx, found := t.find(rssHash, rkey); found {
			t.remove(idx)
			t.stats.Aborted++
		}
		return false

	case tcp.IsSYN():
		key := FlowKey{Client: s.Src(), Server: s.Dst(), ClientPort: tcp.SrcPort, ServerPort: tcp.DstPort}
		idx, found := t.find(rssHash, key)
		if found {
			e := &t.slots[idx]
			if e.clientISN == tcp.Seq {
				// Retransmitted SYN (possibly after the SYN-ACK, when it
				// was lost client-side): keep the first timestamps — the
				// paper measures from the first SYN — refresh liveness.
				e.lastTS = ts
				if e.retrans < 255 {
					e.retrans++
				}
				t.stats.SYNRetrans++
				return false
			}
			// A new connection reusing the 4-tuple: restart tracking. The
			// slot's budget charge (and promoted flag) carries over — the
			// record is reused, not reallocated, so the admitter is not
			// re-consulted.
			*e = entry{key: key, synTS: ts, lastTS: ts, clientISN: tcp.Seq,
				hash: rssHash, state: stateSYN, ipv6: s.IPv6, promoted: e.promoted}
			t.stats.SYNs++
			return false
		}
		if t.live >= t.maxLive {
			t.stats.TableFull++
			return false
		}
		var promoted bool
		if t.admit != nil {
			// Sketch tier active: the insert consults the promoter instead
			// of allocating unconditionally. A refusal means the flow stays
			// sketch-only (counted SketchOnlyFlows by the admitter).
			ok, prom := t.admit.Admit(HandshakeEntryBytes)
			if !ok {
				return false
			}
			promoted = prom
		}
		t.slots[idx] = entry{key: key, synTS: ts, lastTS: ts, clientISN: tcp.Seq,
			hash: rssHash, state: stateSYN, ipv6: s.IPv6, promoted: promoted}
		t.live++
		t.stats.SYNs++
		return false

	case tcp.IsSYNACK():
		// Server→client: reverse the tuple to the client orientation.
		key := FlowKey{Client: s.Dst(), Server: s.Src(), ClientPort: tcp.DstPort, ServerPort: tcp.SrcPort}
		idx, found := t.find(rssHash, key)
		if !found {
			t.stats.OrphanSYNACKs++
			return false
		}
		e := &t.slots[idx]
		switch e.state {
		case stateSYN:
			if tcp.Ack != e.clientISN+1 {
				// SYN-ACK for a different incarnation; ignore.
				t.stats.OrphanSYNACKs++
				return false
			}
			e.synAckTS = ts
			e.serverISN = tcp.Seq
			e.lastTS = ts
			e.state = stateSYNACK
			t.stats.SYNACKs++
		case stateSYNACK:
			// Retransmitted SYN-ACK: the paper keeps the first
			// ("the following SYN-ACK"); refresh liveness only.
			e.lastTS = ts
		}
		return false

	// Plain ACK: RST packets were handled first, and any SYN packet
	// matched IsSYN or IsSYNACK above.
	case tcp.ACK():
		key := FlowKey{Client: s.Src(), Server: s.Dst(), ClientPort: tcp.SrcPort, ServerPort: tcp.DstPort}
		idx, found := t.find(rssHash, key)
		if !found {
			t.stats.MidstreamACKs++
			return false
		}
		e := &t.slots[idx]
		if e.state != stateSYNACK {
			// ACK from client while we've not seen the SYN-ACK: can't
			// measure; leave the entry (SYN-ACK may be reordered).
			t.stats.InvalidACKs++
			return false
		}
		if tcp.Seq != e.clientISN+1 || tcp.Ack != e.serverISN+1 {
			t.stats.InvalidACKs++
			return false
		}
		*m = Measurement{
			Flow:       e.key,
			IPv6:       e.ipv6,
			External:   e.synAckTS - e.synTS,
			Internal:   ts - e.synAckTS,
			Total:      ts - e.synTS,
			SYNTime:    e.synTS,
			SYNACKTime: e.synAckTS,
			ACKTime:    ts,
			SYNRetrans: e.retrans,
			Queue:      t.queue,
		}
		t.remove(idx)
		t.stats.Completed++
		return true
	}
	return false
}

// maybeSweep advances the incremental eviction scan. Every sweepInterval of
// virtual time the whole table is covered in sweepChunks pieces, so eviction
// cost is amortized and never stalls a burst.
const (
	sweepChunk = 256
)

func (t *HandshakeTable) maybeSweep(now int64) {
	if t.lastSweep == 0 {
		t.lastSweep = now
		return
	}
	// Target: cover the full table once per timeout period.
	interval := t.timeout / int64(len(t.slots)/sweepChunk+1)
	if interval < 1 {
		interval = 1
	}
	if now-t.lastSweep < interval {
		return
	}
	t.lastSweep = now
	end := t.sweepPos + sweepChunk
	for i := t.sweepPos; i < end; i++ {
		t.evictExpiredAt(i&t.mask, now)
	}
	t.sweepPos = end & t.mask
}

// evictExpiredAt removes the entry at idx while it is expired; backward-shift
// deletion may move another expired entry into idx, so it loops.
func (t *HandshakeTable) evictExpiredAt(idx uint32, now int64) {
	for {
		s := &t.slots[idx]
		if s.state == stateEmpty || now-s.lastTS <= t.timeout {
			return
		}
		awaiting := s.state == stateSYN
		if awaiting {
			t.stats.ExpiredAwait++
		}
		t.stats.Expired++
		lastTS := s.lastTS
		t.remove(idx)
		if t.onExpire != nil {
			t.onExpire(lastTS, awaiting)
		}
	}
}

// SweepAll synchronously evicts every expired entry (used at end of trace
// and in tests).
func (t *HandshakeTable) SweepAll(now int64) {
	for i := uint32(0); i < uint32(len(t.slots)); i++ {
		t.evictExpiredAt(i, now)
	}
}
