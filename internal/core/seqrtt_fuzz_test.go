package core

// Native fuzz target for the SeqTracker — the stateful per-flow machinery
// behind sequence-matched RTT and loss classification. The tracker's
// contract under arbitrary segment/ACK interleavings (reordering, overlap,
// wraparound sequence numbers, truncated payload descriptions) is: never
// panic, never emit a sample with RTT ≤ 0 under monotone tap timestamps,
// keep live-slot occupancy bounded, and keep every stats counter monotone
// with the emitted sample/loss streams summing exactly into the counters.
// Seeds cover the scripted exchanges the unit tests pin; the checked-in
// corpus under testdata/fuzz/FuzzSeqTracker is regenerated with
// RURU_UPDATE=1 (see docs/TESTING.md). CI runs a short -fuzz smoke on top.

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"ruru/internal/pkt"
)

// fuzzOpLen is the encoded size of one tracker operation; a trailing
// partial op is ignored (truncated-input robustness is part of the seeds).
const fuzzOpLen = 12

// seqFuzzOp decodes one operation from the fuzz input:
//
//	b[0] bits 0..1  flow selector (4 fixed canonical flows)
//	b[0] bit  2     direction (A→B / B→A)
//	b[0] bits 3..5  flag variant (ACK / plain / FIN / RST / SYN / SYN|ACK)
//	b[0] bit  6     carry a TCP timestamp option
//	b[1]            payload length (0..255) and timestamp advance
//	b[2:6], b[6:10] seq, ack (big endian — wraparound comes for free)
//	b[10], b[11]    tsval, tsecr bytes when the option is carried
func seqFuzzOp(tb testing.TB, b []byte) (*pkt.Summary, uint32) {
	tb.Helper()
	flows := [4][2]string{
		{"10.0.0.1", "192.0.2.1"},
		{"10.0.0.2", "192.0.2.1"},
		{"2001:db8::1", "2001:db8::9"},
		{"10.0.0.1", "10.0.0.1"}, // same addr, ports disambiguate
	}
	fl := flows[b[0]&3]
	src, dst := fl[0], fl[1]
	sp, dp := uint16(5000), uint16(443)
	if b[0]&4 != 0 {
		src, dst = dst, src
		sp, dp = dp, sp
	}
	var flags uint8
	switch (b[0] >> 3) & 7 {
	case 0, 1, 2:
		flags = pkt.TCPAck
	case 3:
		flags = 0
	case 4:
		flags = pkt.TCPFin | pkt.TCPAck
	case 5:
		flags = pkt.TCPRst
	case 6:
		flags = pkt.TCPSyn
	case 7:
		flags = pkt.TCPSyn | pkt.TCPAck
	}
	seq := binary.BigEndian.Uint32(b[2:6])
	ack := binary.BigEndian.Uint32(b[6:10])
	s, h := mkDataSummary(src, dst, sp, dp, flags, seq, ack, int(b[1]))
	if b[0]&0x40 != 0 {
		var opt [pkt.TimestampOptionLen]byte
		s.TCP.Options = append([]byte(nil), pkt.PutTimestampOption(opt[:], uint32(b[10]), uint32(b[11]))...)
	}
	return s, h
}

// seqFuzzSeeds scripts the exchanges the unit tests pin, as encoded op
// streams: a clean data→ACK pair, a fast retransmit, duplicate ACKs, a
// wraparound edge, a SYN|RST probe and a truncated tail.
func seqFuzzSeeds() [][]byte {
	op := func(ctl, pay byte, seq, ack uint32, tsv, tse byte) []byte {
		b := make([]byte, fuzzOpLen)
		b[0], b[1] = ctl, pay
		binary.BigEndian.PutUint32(b[2:6], seq)
		binary.BigEndian.PutUint32(b[6:10], ack)
		b[10], b[11] = tsv, tse
		return b
	}
	cat := func(ops ...[]byte) []byte {
		var out []byte
		for _, o := range ops {
			out = append(out, o...)
		}
		return out
	}
	return [][]byte{
		// data A→B then covering ACK B→A.
		cat(op(0, 100, 1000, 1, 0, 0), op(4, 0, 1, 1100, 0, 0)),
		// fast retransmit: same range twice, then the ACK (Karn: no sample).
		cat(op(0, 100, 1000, 1, 0, 0), op(0, 100, 1000, 1, 0, 0), op(4, 0, 1, 1100, 0, 0)),
		// duplicate ACKs.
		cat(op(0, 100, 1000, 1, 0, 0), op(4, 0, 1, 1050, 0, 0), op(4, 0, 1, 1050, 0, 0), op(4, 0, 1, 1050, 0, 0)),
		// wraparound edge [0xFFFFFF00, 0x64).
		cat(op(1, 100, 0xFFFFFF00, 1, 0, 0), op(5, 0, 1, 0x64-0x100+0x100, 0, 0)),
		// SYN|RST probe and a lone SYN (must never enter the table).
		cat(op(6<<3, 0, 7, 7, 0, 0), op(5<<3, 0, 7, 7, 0, 0)),
		// timestamp-bearing exchange (DeferTS config path).
		cat(op(0x40, 100, 1000, 1, 10, 20), op(0x44, 0, 1, 1100, 30, 10)),
		// truncated tail: one full op plus half an op.
		cat(op(2, 50, 500, 1, 0, 0), op(2, 0, 1, 550, 0, 0)[:5]),
	}
}

func FuzzSeqTracker(f *testing.F) {
	for _, s := range seqFuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		configs := []SeqConfig{
			{Capacity: 16, Timeout: 64},
			{Capacity: 16, Timeout: 64, OneDirection: true},
			{Capacity: 16, Timeout: 1 << 40, DeferTS: true, RTOThreshold: 8},
		}
		for ci, cfg := range configs {
			tr := NewSeqTracker(cfg)
			var sample SeqSample
			var loss LossEvent
			var prev SeqStats
			var samples, oneDir, retrans, rto, dup uint64
			ts := int64(0)
			for off := 0; off+fuzzOpLen <= len(data); off += fuzzOpLen {
				s, h := seqFuzzOp(t, data[off:off+fuzzOpLen])
				ts += int64(data[off+1]) + 1 // strictly monotone tap clock
				gotS, gotL := tr.Process(s, ts, h, &sample, &loss)
				if gotS {
					samples++
					if sample.RTT <= 0 {
						t.Fatalf("cfg %d: sample with RTT %d at op %d", ci, sample.RTT, off/fuzzOpLen)
					}
					if sample.OneDir {
						oneDir++
					}
					if sample.OneDir != cfg.OneDirection {
						t.Fatalf("cfg %d: OneDir=%v under OneDirection=%v", ci, sample.OneDir, cfg.OneDirection)
					}
				}
				if gotL {
					switch loss.Kind {
					case LossRetrans:
						retrans++
					case LossRTO:
						rto++
					case LossDupACK:
						dup++
					}
				}
				// Occupancy stays under the 85% load-factor ceiling.
				if tr.Len() > tr.maxLive {
					t.Fatalf("cfg %d: occupancy %d exceeds maxLive %d", ci, tr.Len(), tr.maxLive)
				}
				// Counters are monotone and sum with the emitted streams.
				st := tr.Stats()
				if st.Packets < prev.Packets || st.Inserted < prev.Inserted ||
					st.Samples < prev.Samples || st.OneDirSamples < prev.OneDirSamples ||
					st.Unmatched < prev.Unmatched || st.Retrans < prev.Retrans ||
					st.RTO < prev.RTO || st.DupACK < prev.DupACK ||
					st.Expired < prev.Expired || st.TableFull < prev.TableFull {
					t.Fatalf("cfg %d: counter went backwards: %+v -> %+v", ci, prev, st)
				}
				prev = st
			}
			st := tr.Stats()
			if st.Samples != samples || st.OneDirSamples != oneDir {
				t.Fatalf("cfg %d: emitted %d/%d samples, counted %d/%d", ci, samples, oneDir, st.Samples, st.OneDirSamples)
			}
			if st.Retrans != retrans || st.RTO != rto || st.DupACK != dup {
				t.Fatalf("cfg %d: emitted losses %d/%d/%d, counted %d/%d/%d",
					ci, retrans, rto, dup, st.Retrans, st.RTO, st.DupACK)
			}
			// Eviction drains everything; Len/Occupancy agree throughout.
			tr.SweepAll(ts + int64(1)<<62)
			if tr.Len() != 0 {
				t.Fatalf("cfg %d: %d entries survived a full sweep", ci, tr.Len())
			}
		}
	})
}

// TestWriteSeqFuzzCorpus regenerates the checked-in seed corpus
// (testdata/fuzz/FuzzSeqTracker) from the scripted seeds plus mutated
// variants. Run with RURU_UPDATE=1; skipped otherwise.
func TestWriteSeqFuzzCorpus(t *testing.T) {
	if os.Getenv("RURU_UPDATE") == "" {
		t.Skip("set RURU_UPDATE=1 to regenerate the fuzz corpus")
	}
	var all [][]byte
	for _, s := range seqFuzzSeeds() {
		all = append(all, s)
		if len(s) > fuzzOpLen {
			all = append(all, s[:len(s)-fuzzOpLen/2]) // truncation
			flip := append([]byte(nil), s...)
			flip[len(flip)/2] ^= 0xff // corrupt a field mid-stream
			all = append(all, flip)
		}
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSeqTracker")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range all {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
		path := filepath.Join(dir, "seed-"+strconv.Itoa(i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("wrote %d corpus files to %s", len(all), dir)
}
