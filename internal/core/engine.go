package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"ruru/internal/nic"
	"ruru/internal/pkt"
)

// Sink receives completed measurements. Emit is called from per-queue worker
// goroutines and must be safe for concurrent use; it should be fast or
// buffering (the mq stage provides a dropping publisher so the fast path
// never blocks, matching the ZeroMQ high-water-mark behaviour).
type Sink interface {
	Emit(m *Measurement)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(m *Measurement)

// Emit implements Sink.
func (f SinkFunc) Emit(m *Measurement) { f(m) }

// TSSink receives continuous RTT samples when timestamp tracking is
// enabled. Same contract as Sink: called from worker goroutines, must not
// block.
type TSSink interface {
	EmitTS(s *TSSample)
}

// TSSinkFunc adapts a function to the TSSink interface.
type TSSinkFunc func(s *TSSample)

// EmitTS implements TSSink.
func (f TSSinkFunc) EmitTS(s *TSSample) { f(s) }

// EngineConfig configures an Engine.
type EngineConfig struct {
	// Port is the packet source. Required.
	Port *nic.Port
	// Sink receives measurements. Required.
	Sink Sink
	// Table configures each per-queue handshake table (Queue is
	// overridden per queue).
	Table TableConfig
	// Burst is the RxBurst size (default 64, DPDK's conventional burst).
	Burst int
	// PollSleep is how long a worker sleeps when a poll comes back empty
	// (default 50µs). Real DPDK busy-polls; yielding keeps tests and
	// laptop runs civil while preserving burst dynamics under load.
	PollSleep time.Duration

	// TSSink, when non-nil, enables continuous RTT tracking from TCP
	// timestamp echoes (a per-queue TSTracker beside each handshake
	// table) and receives the samples. TSTable configures the trackers.
	TSSink  TSSink
	TSTable TSConfig
}

// Engine runs one measurement worker per RSS queue (the paper's "DPDK
// processing threads ... allocated on separate CPU cores").
type Engine struct {
	cfg    EngineConfig
	tables []*HandshakeTable

	mu      sync.Mutex
	running bool
}

// NewEngine validates cfg and builds the per-queue state.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Port == nil {
		return nil, errors.New("core: EngineConfig.Port is required")
	}
	if cfg.Sink == nil {
		return nil, errors.New("core: EngineConfig.Sink is required")
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 64
	}
	if cfg.PollSleep <= 0 {
		cfg.PollSleep = 50 * time.Microsecond
	}
	e := &Engine{cfg: cfg}
	for q := 0; q < cfg.Port.NumQueues(); q++ {
		tc := cfg.Table
		tc.Queue = q
		e.tables = append(e.tables, NewHandshakeTable(tc))
	}
	return e, nil
}

// Tables exposes the per-queue tables (read their stats only from the
// owning worker or after Run returns).
func (e *Engine) Tables() []*HandshakeTable { return e.tables }

// Stats aggregates all per-queue table stats. Call after Run has returned
// (or accept torn counters as monitoring data).
func (e *Engine) Stats() TableStats {
	var total TableStats
	for _, t := range e.tables {
		s := t.Stats()
		total.Packets += s.Packets
		total.SYNs += s.SYNs
		total.SYNRetrans += s.SYNRetrans
		total.SYNACKs += s.SYNACKs
		total.OrphanSYNACKs += s.OrphanSYNACKs
		total.Completed += s.Completed
		total.InvalidACKs += s.InvalidACKs
		total.MidstreamACKs += s.MidstreamACKs
		total.Aborted += s.Aborted
		total.Expired += s.Expired
		total.ExpiredAwait += s.ExpiredAwait
		total.TableFull += s.TableFull
		total.Occupancy += s.Occupancy
	}
	return total
}

// Run polls every queue until ctx is cancelled. It blocks; cancel the
// context to stop. Packets still queued at cancellation are drained.
func (e *Engine) Run(ctx context.Context) error {
	e.mu.Lock()
	if e.running {
		e.mu.Unlock()
		return errors.New("core: engine already running")
	}
	e.running = true
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.running = false
		e.mu.Unlock()
	}()

	var wg sync.WaitGroup
	for q := 0; q < e.cfg.Port.NumQueues(); q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			e.runQueue(ctx, q)
		}(q)
	}
	wg.Wait()
	return ctx.Err()
}

// runQueue is the per-core poll loop: RxBurst → parse → handshake table
// (and, when enabled, the timestamp tracker).
func (e *Engine) runQueue(ctx context.Context, q int) {
	var (
		parser  pkt.Parser
		sum     pkt.Summary
		m       Measurement
		ts      TSSample
		table   = e.tables[q]
		tracker *TSTracker
		bufs    = make([]*nic.Buf, e.cfg.Burst)
	)
	if e.cfg.TSSink != nil {
		tc := e.cfg.TSTable
		tc.Queue = q
		tracker = NewTSTracker(tc)
	}
	processBurst := func(n int) {
		for i := 0; i < n; i++ {
			b := bufs[i]
			if err := parser.Parse(b.Bytes(), &sum); err == nil && sum.IsTCP() {
				if table.Process(&sum, b.Timestamp, b.RSSHash, &m) {
					e.cfg.Sink.Emit(&m)
				}
				if tracker != nil && tracker.Process(&sum, b.Timestamp, b.RSSHash, &ts) {
					e.cfg.TSSink.EmitTS(&ts)
				}
			}
			b.Free()
		}
	}
	for {
		n, err := e.cfg.Port.RxBurst(q, bufs)
		if err != nil {
			return
		}
		processBurst(n)
		if n == 0 {
			select {
			case <-ctx.Done():
				// Final drain: whatever was enqueued before cancel.
				for {
					n, _ := e.cfg.Port.RxBurst(q, bufs)
					if n == 0 {
						return
					}
					processBurst(n)
				}
			default:
				if e.cfg.PollSleep > 0 {
					time.Sleep(e.cfg.PollSleep)
				} else {
					runtime.Gosched()
				}
			}
		}
	}
}
