package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"ruru/internal/nic"
	"ruru/internal/pkt"
)

// Sink receives completed measurements. Emit is called from per-queue worker
// goroutines and must be safe for concurrent use; it should be fast or
// buffering (the mq stage provides a dropping publisher so the fast path
// never blocks, matching the ZeroMQ high-water-mark behaviour).
type Sink interface {
	Emit(m *Measurement)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(m *Measurement)

// Emit implements Sink.
func (f SinkFunc) Emit(m *Measurement) { f(m) }

// TSSink receives continuous RTT samples when timestamp tracking is
// enabled. Same contract as Sink: called from worker goroutines, must not
// block.
type TSSink interface {
	EmitTS(s *TSSample)
}

// TSSinkFunc adapts a function to the TSSink interface.
type TSSinkFunc func(s *TSSample)

// EmitTS implements TSSink.
func (f TSSinkFunc) EmitTS(s *TSSample) { f(s) }

// SeqSink receives sequence-matched RTT samples and loss/quality events
// when seq tracking is enabled. Same contract as Sink: called from worker
// goroutines, must not block.
type SeqSink interface {
	EmitSeq(s *SeqSample)
	EmitLoss(ev *LossEvent)
}

// PollConfig tunes the adaptive idle ladder a worker descends when polls
// come back empty: busy-spin first (a hot queue usually refills within
// nanoseconds), then cooperative yields, then exponentially growing sleeps.
// Any amount of traffic resets the ladder, so a loaded worker is always in
// the spin regime — the DPDK busy-poll behaviour — while an idle worker
// costs roughly nothing. This replaces the old fixed 50µs PollSleep, whose
// wake-up latency let queues overflow during injection bursts.
type PollConfig struct {
	// Spin is the number of consecutive empty polls served by pure
	// busy-spinning before the worker starts yielding (default 64).
	Spin int
	// Yield is the number of runtime.Gosched rounds after spinning and
	// before sleeping (default 16).
	Yield int
	// SleepMin is the first sleep after the yield phase (default 1µs).
	SleepMin time.Duration
	// SleepMax caps the exponential sleep growth (default 100µs).
	SleepMax time.Duration
}

func (c *PollConfig) setDefaults(legacySleep time.Duration) {
	if c.Spin <= 0 {
		c.Spin = 64
	}
	if c.Yield <= 0 {
		c.Yield = 16
	}
	if c.SleepMin <= 0 {
		c.SleepMin = time.Microsecond
	}
	if c.SleepMax <= 0 {
		c.SleepMax = 100 * time.Microsecond
		if legacySleep > 0 {
			c.SleepMax = legacySleep
		}
	}
	if c.SleepMax < c.SleepMin {
		c.SleepMax = c.SleepMin
	}
}

// idleWait advances the ladder by one empty poll.
func (c *PollConfig) idleWait(idle int) {
	switch {
	case idle <= c.Spin:
		// busy-spin: retry immediately
	case idle <= c.Spin+c.Yield:
		runtime.Gosched()
	default:
		d := c.SleepMin << uint(min(idle-c.Spin-c.Yield-1, 16))
		if d > c.SleepMax || d <= 0 {
			d = c.SleepMax
		}
		time.Sleep(d)
	}
}

// EngineConfig configures an Engine.
type EngineConfig struct {
	// Port is the packet source. Required.
	Port *nic.Port
	// Sink receives measurements. Required.
	Sink Sink
	// Table configures each per-queue handshake table (Queue is
	// overridden per queue).
	Table TableConfig
	// Burst is the RxBurst size (default 64, DPDK's conventional burst).
	Burst int
	// Poll tunes the adaptive idle ladder (zero values get defaults).
	Poll PollConfig
	// PollSleep is the legacy fixed idle-sleep knob; when set it becomes
	// Poll.SleepMax (the worst-case wake-up latency). Prefer Poll.
	PollSleep time.Duration

	// TSSink, when non-nil, enables continuous RTT tracking from TCP
	// timestamp echoes (a per-queue TSTracker beside each handshake
	// table) and receives the samples. TSTable configures the trackers.
	TSSink  TSSink
	TSTable TSConfig

	// SeqSink, when non-nil, enables sequence-matched RTT and
	// retransmit/RTO/dupack loss classification (a per-queue SeqTracker
	// beside each handshake table) and receives samples and loss events.
	// SeqTable configures the trackers; when TSSink is also set and
	// SeqTable.OneDirection is false, SeqTable.DeferTS is forced on so a
	// timestamp-bearing flow is sampled by exactly one tracker.
	SeqSink  SeqSink
	SeqTable SeqConfig

	// NewAdmitter, when non-nil, enables the bounded-memory sketch tier:
	// it is called once per queue at construction and the returned
	// Admitter gates every exact-table insert on that queue (handshake
	// table plus both trackers) and observes every parsed TCP packet.
	// The returned value is handed to the queue's worker goroutine —
	// single-writer from then on, like the tables themselves.
	NewAdmitter func(queue int) Admitter
}

// Engine runs one measurement worker per RSS queue (the paper's "DPDK
// processing threads ... allocated on separate CPU cores").
type Engine struct {
	cfg    EngineConfig
	tables []*HandshakeTable
	admits []Admitter // per-queue, nil slice when the sketch tier is off
	snaps  []statsCell

	mu      sync.Mutex
	running bool
}

// statsCell holds the stats snapshots a worker publishes once per burst,
// so monitors can read live table counters without racing the
// single-writer hot path. The mutex is uncontended in steady state and the
// cost is amortized over a whole burst. The tracker snapshots stay zero
// when the corresponding sink is not configured.
type statsCell struct {
	mu     sync.Mutex
	snap   TableStats
	ts     TSStats
	seq    SeqStats
	sketch SketchStats
}

// NewEngine validates cfg and builds the per-queue state.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Port == nil {
		return nil, errors.New("core: EngineConfig.Port is required")
	}
	if cfg.Sink == nil {
		return nil, errors.New("core: EngineConfig.Sink is required")
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 64
	}
	cfg.Poll.setDefaults(cfg.PollSleep)
	e := &Engine{cfg: cfg, snaps: make([]statsCell, cfg.Port.NumQueues())}
	for q := 0; q < cfg.Port.NumQueues(); q++ {
		tc := cfg.Table
		tc.Queue = q
		if cfg.NewAdmitter != nil {
			adm := cfg.NewAdmitter(q)
			if adm == nil {
				return nil, errors.New("core: EngineConfig.NewAdmitter returned nil")
			}
			e.admits = append(e.admits, adm)
			tc.Admit = adm
		}
		e.tables = append(e.tables, NewHandshakeTable(tc))
	}
	return e, nil
}

// Tables exposes the per-queue tables (read their stats only from the
// owning worker or after Run returns).
func (e *Engine) Tables() []*HandshakeTable { return e.tables }

// Stats aggregates all per-queue table stats. Safe to call from any
// goroutine at any time: it reads the snapshots each worker publishes at
// burst boundaries (so values can trail the hot path by up to one burst).
func (e *Engine) Stats() TableStats {
	var total TableStats
	for q := range e.snaps {
		cell := &e.snaps[q]
		cell.mu.Lock()
		s := cell.snap
		cell.mu.Unlock()
		total.Packets += s.Packets
		total.SYNs += s.SYNs
		total.SYNRetrans += s.SYNRetrans
		total.SYNACKs += s.SYNACKs
		total.OrphanSYNACKs += s.OrphanSYNACKs
		total.Completed += s.Completed
		total.InvalidACKs += s.InvalidACKs
		total.MidstreamACKs += s.MidstreamACKs
		total.Aborted += s.Aborted
		total.Expired += s.Expired
		total.ExpiredAwait += s.ExpiredAwait
		total.TableFull += s.TableFull
		total.Occupancy += s.Occupancy
	}
	return total
}

// TSStats aggregates the per-queue timestamp-tracker stats. Zero when
// EngineConfig.TSSink is unset. Same snapshot semantics as Stats.
func (e *Engine) TSStats() TSStats {
	var total TSStats
	for q := range e.snaps {
		cell := &e.snaps[q]
		cell.mu.Lock()
		s := cell.ts
		cell.mu.Unlock()
		total.Packets += s.Packets
		total.NoTS += s.NoTS
		total.Inserted += s.Inserted
		total.Samples += s.Samples
		total.Unmatched += s.Unmatched
		total.Expired += s.Expired
		total.TableFull += s.TableFull
		total.Occupancy += s.Occupancy
	}
	return total
}

// SeqStats aggregates the per-queue seq-tracker stats. Zero when
// EngineConfig.SeqSink is unset. Same snapshot semantics as Stats.
func (e *Engine) SeqStats() SeqStats {
	var total SeqStats
	for q := range e.snaps {
		cell := &e.snaps[q]
		cell.mu.Lock()
		s := cell.seq
		cell.mu.Unlock()
		total.Packets += s.Packets
		total.Inserted += s.Inserted
		total.Samples += s.Samples
		total.OneDirSamples += s.OneDirSamples
		total.Unmatched += s.Unmatched
		total.Retrans += s.Retrans
		total.RTO += s.RTO
		total.DupACK += s.DupACK
		total.Expired += s.Expired
		total.TableFull += s.TableFull
		total.Occupancy += s.Occupancy
	}
	return total
}

// SketchStats aggregates the per-queue sketch-tier ledgers. Zero when
// EngineConfig.NewAdmitter is unset. Counters and byte gauges sum across
// queues; the error bounds (EpsilonBytes, CollisionDepth) take the worst
// queue, since each queue's sketch answers only for its own flows.
func (e *Engine) SketchStats() SketchStats {
	var total SketchStats
	for q := range e.snaps {
		cell := &e.snaps[q]
		cell.mu.Lock()
		s := cell.sketch
		cell.mu.Unlock()
		total.Promoted += s.Promoted
		total.Demoted += s.Demoted
		total.SketchOnlyFlows += s.SketchOnlyFlows
		total.LiveBytes += s.LiveBytes
		total.SketchBytes += s.SketchBytes
		total.BudgetBytes += s.BudgetBytes
		if s.EpsilonBytes > total.EpsilonBytes {
			total.EpsilonBytes = s.EpsilonBytes
		}
		if s.CollisionDepth > total.CollisionDepth {
			total.CollisionDepth = s.CollisionDepth
		}
	}
	return total
}

// Run polls every queue until ctx is cancelled. It blocks; cancel the
// context to stop. Packets still queued at cancellation are drained.
func (e *Engine) Run(ctx context.Context) error {
	e.mu.Lock()
	if e.running {
		e.mu.Unlock()
		return errors.New("core: engine already running")
	}
	e.running = true
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.running = false
		e.mu.Unlock()
	}()

	var wg sync.WaitGroup
	for q := 0; q < e.cfg.Port.NumQueues(); q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			e.runQueue(ctx, q)
		}(q)
	}
	wg.Wait()
	return ctx.Err()
}

// runQueue is the per-core poll loop: RxBurst → parse → handshake table
// (and, when enabled, the timestamp and sequence trackers).
func (e *Engine) runQueue(ctx context.Context, q int) {
	var (
		parser  pkt.Parser
		sum     pkt.Summary
		m       Measurement
		ts      TSSample
		ss      SeqSample
		lev     LossEvent
		table   = e.tables[q]
		tracker *TSTracker
		seqTrk  *SeqTracker
		adm     Admitter
		bufs    = make([]*nic.Buf, e.cfg.Burst)
	)
	if e.admits != nil {
		adm = e.admits[q]
	}
	if e.cfg.TSSink != nil {
		tc := e.cfg.TSTable
		tc.Queue = q
		tc.Admit = adm
		tracker = NewTSTracker(tc)
	}
	if e.cfg.SeqSink != nil {
		sc := e.cfg.SeqTable
		sc.Queue = q
		sc.Admit = adm
		if tracker != nil && !sc.OneDirection {
			sc.DeferTS = true
		}
		seqTrk = NewSeqTracker(sc)
	}
	processBurst := func(n int) {
		for i := 0; i < n; i++ {
			b := bufs[i]
			if err := parser.Parse(b.Bytes(), &sum); err == nil && sum.IsTCP() {
				if adm != nil {
					// The sketch observes every TCP packet before the
					// tables rule on it, so an Admit for this packet's
					// flow sees its volume already accounted.
					adm.Observe(&sum)
				}
				if table.Process(&sum, b.Timestamp, b.RSSHash, &m) {
					e.cfg.Sink.Emit(&m)
				}
				if tracker != nil && tracker.Process(&sum, b.Timestamp, b.RSSHash, &ts) {
					e.cfg.TSSink.EmitTS(&ts)
				}
				if seqTrk != nil {
					gotSample, gotLoss := seqTrk.Process(&sum, b.Timestamp, b.RSSHash, &ss, &lev)
					if gotSample {
						e.cfg.SeqSink.EmitSeq(&ss)
					}
					if gotLoss {
						e.cfg.SeqSink.EmitLoss(&lev)
					}
				}
			}
			b.Free()
		}
	}
	// publish copies the table and tracker counters into this queue's
	// monitoring cell: one uncontended lock per burst instead of atomics
	// per packet.
	publish := func() {
		snap := table.Stats() // we are the table's single writer
		cell := &e.snaps[q]
		cell.mu.Lock()
		cell.snap = snap
		if tracker != nil {
			cell.ts = tracker.Stats()
		}
		if seqTrk != nil {
			cell.seq = seqTrk.Stats()
		}
		if adm != nil {
			cell.sketch = adm.Stats()
		}
		cell.mu.Unlock()
		if adm != nil {
			// Refresh the heavy-hitter snapshot readers consume (the tier
			// throttles the copy internally).
			adm.Publish(false)
		}
	}
	defer func() {
		if adm != nil {
			adm.Publish(true) // final unthrottled snapshot for readers
		}
		publish()
	}()
	idle := 0
	for {
		n, err := e.cfg.Port.RxBurst(q, bufs)
		if err != nil {
			return
		}
		processBurst(n)
		if n > 0 {
			publish()
			idle = 0
			continue
		}
		select {
		case <-ctx.Done():
			// Final drain: whatever was enqueued before cancel.
			for {
				n, _ := e.cfg.Port.RxBurst(q, bufs)
				if n == 0 {
					return
				}
				processBurst(n)
			}
		default:
			idle++
			e.cfg.Poll.idleWait(idle)
		}
	}
}
