package core

import (
	"net/netip"

	"ruru/internal/pkt"
)

// TSSample is one continuous RTT observation derived from TCP timestamp
// echoes (RFC 7323), the pping technique. When host A sends TSval v (seen at
// the tap at t1) and host B's echo TSecr=v passes the tap at t2, then
// t2−t1 is the round trip between the tap and B — so the tap measures the
// *echoer's* side of the path, continuously, for established flows the
// handshake engine never saw.
//
// This extends the paper's handshake-only measurement: setup latency comes
// from the three-way handshake (Measurement), in-stream latency evolution
// from timestamp echoes (TSSample).
type TSSample struct {
	// Echoer is the host whose side of the path was measured (the sender
	// of the echo packet); Peer is the other endpoint.
	Echoer, Peer netip.Addr
	// EchoerPort and PeerPort complete the tuple.
	EchoerPort, PeerPort uint16
	// RTT is the tap↔echoer round trip in nanoseconds; At the tap
	// timestamp of the echo.
	RTT int64
	At  int64
	// Queue is the observing RSS queue.
	Queue int
}

// TSStats counts tracker outcomes.
type TSStats struct {
	Packets   uint64 // TCP packets examined
	NoTS      uint64 // packets without a timestamp option
	Inserted  uint64 // TSvals registered
	Samples   uint64 // RTT samples produced
	Unmatched uint64 // echoes whose TSval was not (or no longer) pending
	Expired   uint64 // flow entries evicted idle
	TableFull uint64 // flows not tracked: table at capacity
	Occupancy uint64 // live flow entries (gauge)
}

// tsPendingSlots bounds outstanding TSvals per direction per flow. Echoes
// arrive one RTT after their TSval; values older than the window are
// overwritten and their (rare, late) echoes counted Unmatched. Eight covers
// typical request/response flows; deep pipelines trade some sample loss for
// bounded memory, like pping.
const tsPendingSlots = 8

type tsPending struct {
	val  uint32
	ts   int64
	used bool
}

type tsEntry struct {
	// key is canonically oriented: the endpoint with the lexicographically
	// smaller (addr, port) is side A.
	key      FlowKey
	hash     uint32
	lastTS   int64
	state    entryState // stateEmpty or stateSYN (used as "live")
	pendA    [tsPendingSlots]tsPending
	pendB    [tsPendingSlots]tsPending
	posA     uint8
	posB     uint8
	promoted bool // admitted through the sketch tier's elephant path
}

// TSConfig configures a TSTracker.
type TSConfig struct {
	// Capacity is the number of flow slots (rounded to a power of two,
	// default 1<<15). Timeout evicts idle flows (default 60s). Queue is
	// recorded in samples.
	Capacity int
	Timeout  int64
	Queue    int
	// Admit, when non-nil, gates new-flow inserts against the sketch
	// tier's byte budget (same contract as TableConfig.Admit).
	Admit Admitter
}

// TSTracker measures continuous RTT from TCP timestamp echoes for one RSS
// queue. Like HandshakeTable it is single-writer and allocation-free on the
// packet path.
type TSTracker struct {
	slots   []tsEntry
	mask    uint32
	live    int
	maxLive int
	timeout int64
	queue   int
	admit   Admitter
	stats   TSStats

	sweepPos  uint32
	lastSweep int64
}

// NewTSTracker creates a tracker from cfg.
func NewTSTracker(cfg TSConfig) *TSTracker {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 1 << 15
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 60e9
	}
	return &TSTracker{
		slots:   make([]tsEntry, n),
		mask:    uint32(n - 1),
		maxLive: n * 85 / 100,
		timeout: timeout,
		queue:   cfg.Queue,
		admit:   cfg.Admit,
	}
}

// Stats returns a snapshot of the tracker counters.
func (t *TSTracker) Stats() TSStats {
	s := t.stats
	s.Occupancy = uint64(t.live)
	return s
}

// Len returns live flow entries.
func (t *TSTracker) Len() int { return t.live }

// canonicalKey orients (src,dst) so both directions map to one key;
// fromA reports whether the packet was sent by side A.
func canonicalKey(src, dst netip.Addr, sp, dp uint16) (key FlowKey, fromA bool) {
	if src.Less(dst) || (src == dst && sp <= dp) {
		return FlowKey{Client: src, Server: dst, ClientPort: sp, ServerPort: dp}, true
	}
	return FlowKey{Client: dst, Server: src, ClientPort: dp, ServerPort: sp}, false
}

func (t *TSTracker) find(hash uint32, key FlowKey) (uint32, bool) {
	i := mix(hash) & t.mask
	for {
		s := &t.slots[i]
		if s.state == stateEmpty {
			return i, false
		}
		if s.hash == hash && s.key == key {
			return i, true
		}
		i = (i + 1) & t.mask
	}
}

func (t *TSTracker) remove(i uint32) {
	if t.admit != nil {
		t.admit.Release(TSEntryBytes, t.slots[i].promoted)
	}
	t.live--
	for {
		t.slots[i] = tsEntry{}
		j := i
		for {
			j = (j + 1) & t.mask
			s := &t.slots[j]
			if s.state == stateEmpty {
				return
			}
			home := mix(s.hash) & t.mask
			if (j-home)&t.mask >= (j-i)&t.mask {
				t.slots[i] = *s
				i = j
				break
			}
		}
	}
}

// Process examines one parsed TCP packet. When the packet's TSecr matches a
// pending TSval from the opposite direction, the sample is stored in *out
// and Process returns true. The packet's own TSval is registered for future
// echoes. rssHash must be direction-independent (symmetric RSS), as for the
// handshake table.
func (t *TSTracker) Process(s *pkt.Summary, ts int64, rssHash uint32, out *TSSample) bool {
	t.stats.Packets++
	t.maybeSweep(ts)

	tcp := &s.TCP
	tsval, tsecr, ok := tcp.TimestampOption()
	if !ok {
		t.stats.NoTS++
		return false
	}
	key, fromA := canonicalKey(s.Src(), s.Dst(), tcp.SrcPort, tcp.DstPort)

	idx, found := t.find(rssHash, key)
	if !found {
		if tcp.RST() {
			return false
		}
		if t.live >= t.maxLive {
			t.stats.TableFull++
			return false
		}
		var promoted bool
		if t.admit != nil {
			ok, prom := t.admit.Admit(TSEntryBytes)
			if !ok {
				return false
			}
			promoted = prom
		}
		t.slots[idx] = tsEntry{key: key, hash: rssHash, lastTS: ts, state: stateSYN, promoted: promoted}
		t.live++
	}
	e := &t.slots[idx]
	e.lastTS = ts

	if tcp.RST() {
		// Abort: drop state immediately (no further echoes will come).
		matched := false
		if tcp.ACK() && tsecr != 0 {
			matched = t.match(e, fromA, tsecr, ts, s, tcp, out)
		}
		t.remove(idx)
		return matched
	}
	// A FIN is NOT a teardown signal here: the close handshake takes
	// another round trip and echoes of in-flight segments are still
	// arriving. Idle eviction reclaims the entry.

	matched := false
	if tcp.ACK() && tsecr != 0 {
		matched = t.match(e, fromA, tsecr, ts, s, tcp, out)
	}

	// Register this packet's TSval (pure SYNs included: the SYN-ACK echo
	// measures the server leg). Skip duplicates within the window so the
	// first transmission's timestamp is preserved.
	pend := &e.pendA
	pos := &e.posA
	if !fromA {
		pend = &e.pendB
		pos = &e.posB
	}
	dup := false
	for i := range pend {
		if pend[i].used && pend[i].val == tsval {
			dup = true
			break
		}
	}
	if !dup {
		pend[*pos] = tsPending{val: tsval, ts: ts, used: true}
		*pos = (*pos + 1) % tsPendingSlots
		t.stats.Inserted++
	}
	return matched
}

// match looks up tsecr among the opposite direction's pending TSvals.
func (t *TSTracker) match(e *tsEntry, fromA bool, tsecr uint32, ts int64, s *pkt.Summary, tcp *pkt.TCP, out *TSSample) bool {
	// The echo packet came from the sender; it echoes values sent by the
	// OTHER side. Matching measures the tap↔sender leg.
	pend := &e.pendB
	if !fromA {
		pend = &e.pendA
	}
	for i := range pend {
		p := &pend[i]
		if p.used && p.val == tsecr {
			*out = TSSample{
				Echoer:     s.Src(),
				Peer:       s.Dst(),
				EchoerPort: tcp.SrcPort,
				PeerPort:   tcp.DstPort,
				RTT:        ts - p.ts,
				At:         ts,
				Queue:      t.queue,
			}
			p.used = false // first echo only
			t.stats.Samples++
			return true
		}
	}
	t.stats.Unmatched++
	return false
}

func (t *TSTracker) maybeSweep(now int64) {
	if t.lastSweep == 0 {
		t.lastSweep = now
		return
	}
	interval := t.timeout / int64(len(t.slots)/sweepChunk+1)
	if interval < 1 {
		interval = 1
	}
	if now-t.lastSweep < interval {
		return
	}
	t.lastSweep = now
	end := t.sweepPos + sweepChunk
	for i := t.sweepPos; i < end; i++ {
		t.evictIdleAt(i&t.mask, now)
	}
	t.sweepPos = end & t.mask
}

func (t *TSTracker) evictIdleAt(idx uint32, now int64) {
	for {
		s := &t.slots[idx]
		if s.state == stateEmpty || now-s.lastTS <= t.timeout {
			return
		}
		t.stats.Expired++
		t.remove(idx)
	}
}

// SweepAll synchronously evicts all idle flows.
func (t *TSTracker) SweepAll(now int64) {
	for i := uint32(0); i < uint32(len(t.slots)); i++ {
		t.evictIdleAt(i, now)
	}
}
