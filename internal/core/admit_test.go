package core

import (
	"context"
	"testing"
	"time"

	"ruru/internal/nic"
	"ruru/internal/pkt"
)

// waitFor polls cond until it holds or a generous deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// fakeAdmitter records every Admitter interaction and answers with
// configurable verdicts, so the tables' admission wiring can be asserted
// without a real sketch tier.
type fakeAdmitter struct {
	refuse  bool
	promote bool

	observes  int
	admits    int
	publishes int
	forced    int
	released  []struct {
		bytes    int64
		promoted bool
	}
}

func (f *fakeAdmitter) Observe(s *pkt.Summary) { f.observes++ }

func (f *fakeAdmitter) Admit(entryBytes int64) (bool, bool) {
	f.admits++
	if f.refuse {
		return false, false
	}
	return true, f.promote
}

func (f *fakeAdmitter) Release(entryBytes int64, promoted bool) {
	f.released = append(f.released, struct {
		bytes    int64
		promoted bool
	}{entryBytes, promoted})
}

func (f *fakeAdmitter) Publish(force bool) {
	f.publishes++
	if force {
		f.forced++
	}
}

func (f *fakeAdmitter) Stats() SketchStats {
	return SketchStats{
		Promoted: 7, SketchOnlyFlows: 3,
		EpsilonBytes: 11, CollisionDepth: 2,
		LiveBytes: 5, SketchBytes: 50, BudgetBytes: 100,
	}
}

func TestAdmitterRefusalKeepsFlowSketchOnly(t *testing.T) {
	fa := &fakeAdmitter{refuse: true}
	tbl := NewHandshakeTable(TableConfig{Capacity: 64, Admit: fa})
	var m Measurement
	syn, h := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPSyn, 100, 0)
	tbl.Process(syn, 1e6, h, &m)
	if fa.admits != 1 {
		t.Fatalf("admits = %d, want 1", fa.admits)
	}
	// The flow was never inserted: the rest of the handshake cannot
	// complete and the eventual ACK is midstream noise, not a measurement.
	synack, _ := mkSummary("192.0.2.1", "10.0.0.1", 443, 40000, pkt.TCPSyn|pkt.TCPAck, 900, 101)
	tbl.Process(synack, 2e6, h, &m)
	ack, _ := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPAck, 101, 901)
	if tbl.Process(ack, 3e6, h, &m) {
		t.Fatal("refused flow completed a handshake")
	}
	if st := tbl.Stats(); st.Completed != 0 || st.Occupancy != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(fa.released) != 0 {
		t.Fatal("release without admission")
	}
}

func TestAdmitterChargeReleasedOnCompletion(t *testing.T) {
	fa := &fakeAdmitter{promote: true}
	tbl := NewHandshakeTable(TableConfig{Capacity: 64, Admit: fa})
	if _, ok := handshake(t, tbl, 1e6, 31e6, 46e6); !ok {
		t.Fatal("handshake did not complete")
	}
	if fa.admits != 1 {
		t.Fatalf("admits = %d, want 1", fa.admits)
	}
	if len(fa.released) != 1 {
		t.Fatalf("releases = %d, want 1 (entry removed on completion)", len(fa.released))
	}
	if r := fa.released[0]; r.bytes != HandshakeEntryBytes || !r.promoted {
		t.Fatalf("release = %+v, want (%d, promoted)", r, HandshakeEntryBytes)
	}
}

func TestAdmitterNotReconsultedOnTupleReuse(t *testing.T) {
	fa := &fakeAdmitter{}
	tbl := NewHandshakeTable(TableConfig{Capacity: 64, Admit: fa})
	var m Measurement
	syn, h := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPSyn, 100, 0)
	tbl.Process(syn, 1e6, h, &m)
	// A new incarnation (different ISN) restarts tracking in the SAME
	// slot: the original charge carries over, no second admission and no
	// intermediate release.
	syn2, _ := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPSyn, 7777, 0)
	tbl.Process(syn2, 5e6, h, &m)
	if fa.admits != 1 {
		t.Fatalf("restart re-consulted the admitter: admits = %d", fa.admits)
	}
	if len(fa.released) != 0 {
		t.Fatalf("restart released the charge: %+v", fa.released)
	}
	synack, _ := mkSummary("192.0.2.1", "10.0.0.1", 443, 40000, pkt.TCPSyn|pkt.TCPAck, 900, 7778)
	tbl.Process(synack, 6e6, h, &m)
	ack, _ := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPAck, 7778, 901)
	if !tbl.Process(ack, 7e6, h, &m) {
		t.Fatal("restarted handshake did not complete")
	}
	if len(fa.released) != 1 {
		t.Fatalf("releases = %d, want exactly 1", len(fa.released))
	}
}

func TestAdmitterGatesTSTracker(t *testing.T) {
	mkTS := func(src, dst string, sp, dp uint16, tsval, tsecr uint32) (*pkt.Summary, uint32) {
		s, h := mkSummary(src, dst, sp, dp, pkt.TCPAck, 1000, 1)
		var opt [pkt.TimestampOptionLen]byte
		s.TCP.Options = append([]byte(nil), pkt.PutTimestampOption(opt[:], tsval, tsecr)...)
		return s, h
	}

	fa := &fakeAdmitter{refuse: true}
	tr := NewTSTracker(TSConfig{Capacity: 64, Admit: fa})
	var sample TSSample
	s, h := mkTS("10.0.0.1", "192.0.2.1", 40000, 443, 100, 0)
	tr.Process(s, 1e6, h, &sample)
	if fa.admits != 1 || tr.Len() != 0 {
		t.Fatalf("refused insert: admits=%d len=%d", fa.admits, tr.Len())
	}

	fa = &fakeAdmitter{}
	tr = NewTSTracker(TSConfig{Capacity: 64, Admit: fa})
	tr.Process(s, 1e6, h, &sample)
	if tr.Len() != 1 {
		t.Fatal("admitted flow not inserted")
	}
	rst, _ := mkSummary("192.0.2.1", "10.0.0.1", 443, 40000, pkt.TCPRst, 1, 0)
	var ropt [pkt.TimestampOptionLen]byte
	rst.TCP.Options = append([]byte(nil), pkt.PutTimestampOption(ropt[:], 900, 100)...)
	tr.Process(rst, 2e6, h, &sample)
	if len(fa.released) != 1 || fa.released[0].bytes != TSEntryBytes {
		t.Fatalf("RST teardown releases = %+v, want one of %d bytes", fa.released, TSEntryBytes)
	}
}

func TestAdmitterGatesSeqTracker(t *testing.T) {
	data, h := mkSummary("10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPAck, 1000, 1)
	data.Payload = make([]byte, 100)

	fa := &fakeAdmitter{refuse: true}
	tr := NewSeqTracker(SeqConfig{Capacity: 64, Admit: fa})
	var sample SeqSample
	var loss LossEvent
	tr.Process(data, 1e6, h, &sample, &loss)
	if fa.admits != 1 || tr.Len() != 0 {
		t.Fatalf("refused insert: admits=%d len=%d", fa.admits, tr.Len())
	}

	fa = &fakeAdmitter{}
	tr = NewSeqTracker(SeqConfig{Capacity: 64, Timeout: 10e9, Admit: fa})
	tr.Process(data, 1e6, h, &sample, &loss)
	if tr.Len() != 1 {
		t.Fatal("admitted flow not inserted")
	}
	tr.SweepAll(1e6 + 11e9)
	if len(fa.released) != 1 || fa.released[0].bytes != SeqEntryBytes {
		t.Fatalf("idle eviction releases = %+v, want one of %d bytes", fa.released, SeqEntryBytes)
	}
}

// TestEngineAdmitterWiring: one admitter per queue, observed on every TCP
// packet before table processing, force-published at worker shutdown, and
// aggregated by SketchStats (sums for counters/bytes, max for the error
// indicators).
func TestEngineAdmitterWiring(t *testing.T) {
	pool := nic.NewMempool(256, 2048)
	port, err := nic.NewPort(nic.PortConfig{Queues: 2, QueueDepth: 64, Pool: pool, Policy: nic.Block})
	if err != nil {
		t.Fatal(err)
	}
	admits := make(map[int]*fakeAdmitter)
	eng, err := NewEngine(EngineConfig{
		Port: port, Sink: SinkFunc(func(*Measurement) {}), Burst: 8,
		Table: TableConfig{Capacity: 64},
		NewAdmitter: func(q int) Admitter {
			fa := &fakeAdmitter{}
			admits[q] = fa
			return fa
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(admits) != 2 {
		t.Fatalf("NewAdmitter called for %d queues, want 2", len(admits))
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx) }()
	port.Inject(buildFrame(t, "10.0.0.1", "192.0.2.1", 40000, 443, pkt.TCPSyn, 100, 0), 1e6)
	waitFor(t, func() bool { return eng.Stats().SYNs == 1 })
	cancel()
	<-done

	total := 0
	for _, fa := range admits {
		total += fa.observes
		if fa.forced == 0 {
			t.Fatal("worker shutdown did not force-publish")
		}
	}
	if total != 1 {
		t.Fatalf("observes = %d, want 1 (one TCP packet)", total)
	}
	// Aggregation: counters and byte gauges sum across queues; the error
	// indicators (a per-tier property, not additive) take the maximum.
	st := eng.SketchStats()
	if st.Promoted != 14 || st.SketchOnlyFlows != 6 || st.LiveBytes != 10 ||
		st.SketchBytes != 100 || st.BudgetBytes != 200 {
		t.Fatalf("summed stats = %+v", st)
	}
	if st.EpsilonBytes != 11 || st.CollisionDepth != 2 {
		t.Fatalf("max stats = %+v", st)
	}
}

func TestEngineNilAdmitterRejected(t *testing.T) {
	pool := nic.NewMempool(16, 512)
	port, _ := nic.NewPort(nic.PortConfig{Queues: 1, Pool: pool})
	_, err := NewEngine(EngineConfig{
		Port: port, Sink: SinkFunc(func(*Measurement) {}),
		Table:       TableConfig{Capacity: 64},
		NewAdmitter: func(q int) Admitter { return nil },
	})
	if err == nil {
		t.Fatal("nil admitter accepted")
	}
}
