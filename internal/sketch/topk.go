package sketch

import (
	"cmp"
	"slices"
	"unsafe"
)

// Agg is a running latency aggregate attached to a heavy-hitter entry
// (min/max/sum/count, enough for mean): the per-(src_city,dst_city)
// latency summary the paper's dashboard statistics come from, kept in
// bounded space.
type Agg struct {
	Count uint64
	Sum   float64
	Min   float64
	Max   float64
}

// merge folds one observation into the aggregate.
func (a *Agg) merge(v float64) {
	if a.Count == 0 || v < a.Min {
		a.Min = v
	}
	if a.Count == 0 || v > a.Max {
		a.Max = v
	}
	a.Count++
	a.Sum += v
}

// Item is one tracked heavy hitter. Count overestimates the key's true
// count by at most Err (the space-saving error: the count of the entry it
// replaced); Count-Err is a guaranteed lower bound. Lat is only populated
// through UpdateLat and covers the key's tenure in the summary.
type Item[K comparable] struct {
	Key   K
	Count uint64
	Err   uint64
	Lat   Agg
}

// TopK is a space-saving heavy-hitter summary (Metwally et al.): at most k
// tracked keys in a min-heap; an unknown key replaces the current minimum
// and inherits its count as error. The superset guarantee is
// deterministic: any key with true count > Total/k is tracked.
//
// TopK is single-writer; concurrent readers consume copies made by the
// owner (FlowTier.Publish).
type TopK[K comparable] struct {
	k     int
	idx   map[K]int32 // key -> heap position
	items []Item[K]   // min-heap on Count
	total uint64      // sum of all increments
	evict uint64      // replacements of the minimum
}

// NewTopK builds a summary tracking at most k keys (default 1024, minimum
// 8). The map and heap are pre-sized so steady-state updates stay
// allocation-free once k keys have been seen.
func NewTopK[K comparable](k int) *TopK[K] {
	if k <= 0 {
		k = 1024
	}
	if k < 8 {
		k = 8
	}
	return &TopK[K]{
		k:     k,
		idx:   make(map[K]int32, k),
		items: make([]Item[K], 0, k),
	}
}

// Update adds inc to key's count.
//
//ruru:noalloc
func (t *TopK[K]) Update(key K, inc uint64) {
	t.total += inc
	if i, ok := t.idx[key]; ok {
		t.items[i].Count += inc
		t.siftDown(int(i))
		return
	}
	if len(t.items) < t.k {
		t.items = append(t.items, Item[K]{Key: key, Count: inc})
		t.idx[key] = int32(len(t.items) - 1)
		t.siftUp(len(t.items) - 1)
		return
	}
	// Replace the minimum: the newcomer inherits its count as error.
	old := &t.items[0]
	delete(t.idx, old.Key)
	*old = Item[K]{Key: key, Count: old.Count + inc, Err: old.Count}
	t.idx[key] = 0
	t.evict++
	t.siftDown(0)
}

// UpdateLat is Update plus a latency observation folded into the entry's
// aggregate. An entry evicted and re-admitted restarts its aggregate (the
// summary covers tenure, not lifetime — documented on Item.Lat).
//
//ruru:noalloc
func (t *TopK[K]) UpdateLat(key K, inc uint64, lat float64) {
	t.total += inc
	if i, ok := t.idx[key]; ok {
		it := &t.items[i]
		it.Count += inc
		it.Lat.merge(lat)
		t.siftDown(int(i))
		return
	}
	if len(t.items) < t.k {
		t.items = append(t.items, Item[K]{Key: key, Count: inc})
		i := len(t.items) - 1
		t.items[i].Lat.merge(lat)
		t.idx[key] = int32(i)
		t.siftUp(i)
		return
	}
	old := &t.items[0]
	delete(t.idx, old.Key)
	*old = Item[K]{Key: key, Count: old.Count + inc, Err: old.Count}
	old.Lat.merge(lat)
	t.idx[key] = 0
	t.evict++
	t.siftDown(0)
}

// heap maintenance: min-heap on Count, idx kept in sync.

//ruru:noalloc
func (t *TopK[K]) swap(i, j int) {
	t.items[i], t.items[j] = t.items[j], t.items[i]
	t.idx[t.items[i].Key] = int32(i)
	t.idx[t.items[j].Key] = int32(j)
}

//ruru:noalloc
func (t *TopK[K]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.items[parent].Count <= t.items[i].Count {
			return
		}
		t.swap(i, parent)
		i = parent
	}
}

//ruru:noalloc
func (t *TopK[K]) siftDown(i int) {
	n := len(t.items)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && t.items[l].Count < t.items[small].Count {
			small = l
		}
		if r < n && t.items[r].Count < t.items[small].Count {
			small = r
		}
		if small == i {
			return
		}
		t.swap(i, small)
		i = small
	}
}

// Contains reports whether key is currently tracked.
func (t *TopK[K]) Contains(key K) bool {
	_, ok := t.idx[key]
	return ok
}

// Estimate returns the tracked count for key (an overestimate) and whether
// the key is tracked at all.
func (t *TopK[K]) Estimate(key K) (uint64, bool) {
	i, ok := t.idx[key]
	if !ok {
		return 0, false
	}
	return t.items[i].Count, true
}

// Min returns the smallest tracked count (0 while the summary is not yet
// full) — the bar a newcomer's inherited error starts from.
func (t *TopK[K]) Min() uint64 {
	if len(t.items) < t.k {
		return 0
	}
	return t.items[0].Count
}

// Len returns the number of tracked keys. Total returns the sum of all
// increments, Evictions the number of minimum replacements.
func (t *TopK[K]) Len() int          { return len(t.items) }
func (t *TopK[K]) Total() uint64     { return t.total }
func (t *TopK[K]) Evictions() uint64 { return t.evict }

// K returns the summary's capacity.
func (t *TopK[K]) K() int { return t.k }

// Top appends the n largest tracked items, descending by Count, to dst
// and returns it (n <= 0 or n > Len: all of them). The copy is the
// publish/serve boundary: callers never see the live heap.
func (t *TopK[K]) Top(dst []Item[K], n int) []Item[K] {
	start := len(dst)
	dst = append(dst, t.items...)
	out := dst[start:]
	// Generic (non-reflective) sort: the serve path stays free of
	// allocations when dst is reused across polls.
	slices.SortFunc(out, func(a, b Item[K]) int {
		if a.Count != b.Count {
			return cmp.Compare(b.Count, a.Count)
		}
		return cmp.Compare(b.Err, a.Err)
	})
	if n > 0 && n < len(out) {
		dst = dst[:start+n]
	}
	return dst
}

// topkItemBytes estimates the per-entry footprint: the heap slot plus the
// index map's key+position+bucket overhead.
func topkItemBytes[K comparable]() int64 {
	var it Item[K]
	var key K
	const mapOverhead = 48 // bucket share + hash cell, empirically ~1.5x key
	return int64(unsafe.Sizeof(it)) + int64(unsafe.Sizeof(key)) + 4 + mapOverhead
}

// Bytes returns the fixed memory footprint charged for the summary
// (capacity-based: space-saving memory does not grow with traffic).
func (t *TopK[K]) Bytes() int64 {
	return int64(t.k) * topkItemBytes[K]()
}
