package sketch

import (
	"math/rand"
	"testing"
)

func TestCMSBasics(t *testing.T) {
	c := NewCMS(1000, 4)
	if c.Width() != 1024 {
		t.Fatalf("width = %d, want rounded-up 1024", c.Width())
	}
	if c.Depth() != 4 {
		t.Fatalf("depth = %d", c.Depth())
	}
	if c.Bytes() != 1024*4*8 {
		t.Fatalf("bytes = %d", c.Bytes())
	}
	if got := c.Estimate(42); got != 0 {
		t.Fatalf("empty estimate = %d", got)
	}
	if got := c.Update(42, 7); got != 7 {
		t.Fatalf("first update returned %d", got)
	}
	if got := c.Update(42, 3); got != 10 {
		t.Fatalf("second update returned %d", got)
	}
	if got := c.Estimate(42); got != 10 {
		t.Fatalf("estimate = %d", got)
	}
	if c.Total() != 10 || c.Distinct() != 1 {
		t.Fatalf("total %d distinct %d", c.Total(), c.Distinct())
	}
}

func TestCMSShapeClamps(t *testing.T) {
	c := NewCMS(0, 0)
	if c.Width() != 1<<16 || c.Depth() != 4 {
		t.Fatalf("defaults: %dx%d", c.Width(), c.Depth())
	}
	c = NewCMS(1, 99)
	if c.Width() != cmsMinWidth || c.Depth() != cmsMaxDepth {
		t.Fatalf("clamps: %dx%d", c.Width(), c.Depth())
	}
}

// TestCMSPropertyVsOracle is the randomized oracle test: many independent
// trials (seed printed on failure) compare the sketch against an exact map
// under a skewed update stream and assert the count-min contract —
// estimates NEVER undercount (conservative update preserves this
// unconditionally), stay monotone, and exceed the εN additive bound for at
// most a small fraction of keys (the bound holds per query with probability
// 1-δ, δ = e^-depth ≈ 1.8% at depth 4; 5% gives deterministic headroom).
func TestCMSPropertyVsOracle(t *testing.T) {
	const trials = 60
	for seed := int64(1); seed <= trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := NewCMS(1<<10, 4)
		truth := make(map[uint64]uint64)
		lastEst := make(map[uint64]uint64)

		keys := make([]uint64, 512+rng.Intn(1024))
		for i := range keys {
			keys[i] = rng.Uint64()
		}
		// Zipf-ish skew: low indexes picked far more often, like flow sizes.
		zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(keys)-1))
		updates := 5000 + rng.Intn(15000)
		for u := 0; u < updates; u++ {
			k := keys[zipf.Uint64()]
			inc := uint64(1 + rng.Intn(1500))
			truth[k] += inc
			est := c.Update(k, inc)
			if est < truth[k] {
				t.Fatalf("seed %d: underestimate for key %#x: est %d < truth %d",
					seed, k, est, truth[k])
			}
			if est < lastEst[k] {
				t.Fatalf("seed %d: non-monotone estimate for key %#x: %d after %d",
					seed, k, est, lastEst[k])
			}
			lastEst[k] = est
		}

		if c.Total() == 0 {
			t.Fatalf("seed %d: zero total after %d updates", seed, updates)
		}
		bound := c.ErrorBound()
		violations, queried := 0, 0
		for k, want := range truth {
			got := c.Estimate(k)
			if got < want {
				t.Fatalf("seed %d: underestimate on readback for key %#x: %d < %d",
					seed, k, got, want)
			}
			queried++
			if got-want > bound {
				violations++
			}
		}
		// Unseen keys may still alias into hot counters, but the bound
		// applies to them too (truth 0).
		for i := 0; i < 256; i++ {
			k := rng.Uint64()
			if _, seen := truth[k]; seen {
				continue
			}
			queried++
			if c.Estimate(k) > bound {
				violations++
			}
		}
		if frac := float64(violations) / float64(queried); frac > 0.05 {
			t.Errorf("seed %d: εN bound (%d) violated for %d/%d keys (%.1f%%), want <= 5%%",
				seed, bound, violations, queried, 100*frac)
		}
	}
}

func TestCMSCollisionDepthGrowsWithDistinct(t *testing.T) {
	c := NewCMS(256, 2)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1024; i++ {
		c.Update(rng.Uint64(), 1)
	}
	if c.CollisionDepth() < 2 {
		t.Fatalf("collision depth = %d after 1024 distinct keys over width 256",
			c.CollisionDepth())
	}
}
