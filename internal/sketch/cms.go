// Package sketch is the bounded-memory flow-state tier (ROADMAP item 2):
// a count-min sketch over per-flow volume, space-saving heavy-hitter
// summaries, and a byte-budgeted admission gate (FlowTier) that promotes
// elephants into the exact tables while mice live sketch-only. The design
// follows the sketch-INT line of work (DUNE, in-DRAM working-set tables):
// exact state only for the working set a sketch selects, bounded error for
// the tail, and the error surfaced as numbers (core.SketchStats) instead of
// silent eviction.
package sketch

import "math"

// CMS is a count-min sketch with conservative update: depth rows of width
// counters, each update incrementing only the counters that equal the row
// minimum. Estimates never undercount; they overcount by at most εN
// (ε = e/width, N = total increments) with probability 1-δ per query
// (δ = e^-depth). Conservative update tightens the constant in practice
// without weakening either guarantee.
//
// CMS is single-writer, like the per-queue tables it sits beside.
type CMS struct {
	rows  []uint64 // depth*width counters, row-major
	mask  uint64   // width-1 (width is a power of two)
	width uint64
	depth int

	total    uint64 // N: sum of all increments
	distinct uint64 // keys whose first update found a zero minimum
}

// Row hashing is Kirsch-Mitzenmacher double hashing: row i indexes with
// h1 + i*h2, derived from one 64-bit key hash, which preserves the
// count-min bounds without hashing the key depth times.
const (
	cmsMinWidth = 1 << 8
	cmsMaxDepth = 8
)

// NewCMS builds a sketch with width rounded up to a power of two (minimum
// 256) and depth clamped to [1,8]. Zero values get 1<<16 x 4: ε ≈ 4e-5,
// δ ≈ 1.8%.
func NewCMS(width, depth int) *CMS {
	if width <= 0 {
		width = 1 << 16
	}
	w := uint64(cmsMinWidth)
	for w < uint64(width) {
		w <<= 1
	}
	if depth <= 0 {
		depth = 4
	}
	if depth > cmsMaxDepth {
		depth = cmsMaxDepth
	}
	return &CMS{
		rows:  make([]uint64, int(w)*depth),
		mask:  w - 1,
		width: w,
		depth: depth,
	}
}

// split derives the two Kirsch-Mitzenmacher base hashes from one 64-bit
// key hash. h2 is forced odd so successive rows never collapse onto one
// index when the key hash has a zero high half.
//
//ruru:noalloc
func split(h uint64) (h1, h2 uint64) {
	h1 = h
	h2 = (h>>32 | h<<32) | 1
	return h1, h2
}

// Update adds inc to key hash h conservatively and returns the new
// estimate. Counters only grow, so per-key estimates are monotone.
//
//ruru:noalloc
func (c *CMS) Update(h uint64, inc uint64) uint64 {
	h1, h2 := split(h)
	// Pass 1: current minimum across rows.
	min := ^uint64(0)
	idx := h1
	for d := 0; d < c.depth; d++ {
		v := c.rows[uint64(d)*c.width+(idx&c.mask)]
		if v < min {
			min = v
		}
		idx += h2
	}
	if min == 0 {
		c.distinct++
	}
	target := min + inc
	// Pass 2: conservative update — lift only counters below the new
	// minimum, so one heavy key cannot inflate every colliding mouse.
	idx = h1
	for d := 0; d < c.depth; d++ {
		p := &c.rows[uint64(d)*c.width+(idx&c.mask)]
		if *p < target {
			*p = target
		}
		idx += h2
	}
	c.total += inc
	return target
}

// Estimate returns the count-min estimate for key hash h: the minimum of
// the key's counters, an overestimate of the true count.
//
//ruru:noalloc
func (c *CMS) Estimate(h uint64) uint64 {
	h1, h2 := split(h)
	min := ^uint64(0)
	idx := h1
	for d := 0; d < c.depth; d++ {
		v := c.rows[uint64(d)*c.width+(idx&c.mask)]
		if v < min {
			min = v
		}
		idx += h2
	}
	return min
}

// Total returns N, the sum of all increments.
func (c *CMS) Total() uint64 { return c.total }

// Distinct returns the number of keys whose first update found an all-zero
// minimum — an underestimate of true distinct keys once the sketch is
// crowded, which is exactly when CollisionDepth should read high anyway.
func (c *CMS) Distinct() uint64 { return c.distinct }

// Width returns the (power-of-two) row width.
func (c *CMS) Width() int { return int(c.width) }

// Depth returns the number of rows.
func (c *CMS) Depth() int { return c.depth }

// Bytes returns the fixed memory footprint of the counter array.
func (c *CMS) Bytes() int64 { return int64(len(c.rows)) * 8 }

// ErrorBound returns εN: the classic count-min additive error bound for
// the current total, with ε = e/width.
func (c *CMS) ErrorBound() uint64 {
	return uint64(math.Ceil(math.E * float64(c.total) / float64(c.width)))
}

// CollisionDepth returns ceil(distinct/width): the expected number of
// distinct keys folded into one counter.
func (c *CMS) CollisionDepth() uint64 {
	return (c.distinct + c.width - 1) / c.width
}
