package sketch

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sync/atomic"

	"ruru/internal/core"
	"ruru/internal/hashx"
	"ruru/internal/pkt"
)

// FlowID is the canonical (direction-independent) identity of a flow in
// the heavy-hitter summaries: endpoints ordered so both directions map to
// one key, like the trackers' canonical orientation.
type FlowID struct {
	A, B         netip.Addr
	APort, BPort uint16
}

// String formats the flow as "a:pa<->b:pb".
func (f FlowID) String() string {
	return fmt.Sprintf("%s:%d<->%s:%d", f.A, f.APort, f.B, f.BPort)
}

// TierConfig configures a FlowTier. Only BudgetBytes is required; every
// structure is auto-sized from it (see NewFlowTier).
type TierConfig struct {
	// BudgetBytes is the hard per-queue cap: fixed sketch overhead plus
	// charged exact-table state never exceeds it. Must be at least
	// MinBudgetBytes().
	BudgetBytes int64
	// Width and Depth override the count-min shape (0: auto from budget).
	Width, Depth int
	// TopK overrides the flow heavy-hitter capacity (0: auto).
	TopK int
	// ElephantMinBytes is the volume floor below which a flow is never an
	// elephant regardless of relative rank (default 64KiB). It keeps the
	// early, empty-sketch phase from promoting every flow.
	ElephantMinBytes uint64
	// ElephantReserve is the fraction of the exact-state budget only
	// elephants may occupy (default 0.10): mice stop admitting at
	// (1-reserve) of it, so a promotion never finds the budget fully
	// eaten by mice.
	ElephantReserve float64
	// PublishEvery throttles snapshot publication: a new heavy-hitter
	// snapshot is copied out at the first burst boundary after this many
	// observations (default 4096). Publish(true) overrides.
	PublishEvery int
	// Queue is the owning RSS queue (recorded for debugging).
	Queue int
}

// Snapshot is an immutable copy of the tier's heavy hitters, safe for
// concurrent readers (the /api/topk serving path). Items are unsorted;
// rank with TopK.Top semantics at the merge point.
type Snapshot struct {
	Flows    []Item[FlowID]
	Prefixes []Item[netip.Prefix]
}

// FlowTier is the per-queue bounded-memory flow tier: a conservative-update
// count-min sketch over flow volume, space-saving flow and source-prefix
// heavy-hitter summaries, and the byte-budget ledger gating exact-table
// admission. It implements core.Admitter.
//
// Ownership follows the tables it guards: single-writer, owned by one
// queue worker. The only cross-goroutine surface is Snapshot(), which
// reads an atomically published copy.
type FlowTier struct {
	cms      *CMS
	flows    *TopK[FlowID]
	prefixes *TopK[netip.Prefix]

	budget   int64 // hard cap
	fixed    int64 // sketch overhead, charged up front
	exactMax int64 // budget - fixed: ceiling for charged exact state
	miceMax  int64 // (1-reserve) * exactMax: ceiling for non-elephants
	live     int64 // charged exact state

	elephantMin uint64

	// Last Observed packet's flow, for Admit (no re-hash).
	lastElephant bool

	promoted   uint64
	demoted    uint64
	sketchOnly uint64

	publishEvery int
	sincePub     int
	snap         atomic.Pointer[Snapshot]

	queue int
}

// minTierShape is the floor every auto-sized structure clamps to.
const (
	minTopK       = 8
	maxFlowTopK   = 4096
	maxPrefixTopK = 1024
	cmsAutoDepth  = 4
)

// MinBudgetBytes returns the smallest legal TierConfig.BudgetBytes: the
// fixed overhead of the minimum-shape sketch structures. A tier built with
// exactly this budget has zero exact-state headroom — every flow lives
// sketch-only — which is the deterministic floor the tight-cap tests use.
func MinBudgetBytes() int64 {
	cms := int64(cmsMinWidth) * cmsAutoDepth * 8
	return cms + int64(minTopK)*topkItemBytes[FlowID]() + int64(minTopK)*topkItemBytes[netip.Prefix]()
}

// NewFlowTier builds a tier. Budget split (documented in ARCHITECTURE.md):
// a quarter of the budget is offered to the sketch structures — half of
// that to the count-min counters, a quarter to the flow top-K, an eighth
// to the prefix top-K, each clamped to its [min,max] shape — and
// everything left after the actual fixed overhead is the exact-state
// ceiling. The hard invariant is fixed + live <= BudgetBytes, always.
func NewFlowTier(cfg TierConfig) (*FlowTier, error) {
	if cfg.BudgetBytes < MinBudgetBytes() {
		return nil, fmt.Errorf("sketch: BudgetBytes %d below minimum %d", cfg.BudgetBytes, MinBudgetBytes())
	}
	share := cfg.BudgetBytes / 4

	width, depth := cfg.Width, cfg.Depth
	if depth <= 0 {
		depth = cmsAutoDepth
	}
	if width <= 0 {
		width = cmsMinWidth
		for int64(width)*2*int64(depth)*8 <= share/2 && width < 1<<20 {
			width *= 2
		}
	}
	cms := NewCMS(width, depth)

	flowK := cfg.TopK
	if flowK <= 0 {
		flowK = clampInt(int((share/4)/topkItemBytes[FlowID]()), minTopK, maxFlowTopK)
	}
	prefixK := clampInt(flowK/4, minTopK, maxPrefixTopK)

	t := &FlowTier{
		cms:          cms,
		flows:        NewTopK[FlowID](flowK),
		prefixes:     NewTopK[netip.Prefix](prefixK),
		budget:       cfg.BudgetBytes,
		elephantMin:  cfg.ElephantMinBytes,
		publishEvery: cfg.PublishEvery,
		queue:        cfg.Queue,
	}
	if t.elephantMin == 0 {
		t.elephantMin = 64 << 10
	}
	if t.publishEvery <= 0 {
		t.publishEvery = 4096
	}
	t.fixed = cms.Bytes() + t.flows.Bytes() + t.prefixes.Bytes()
	if t.fixed > cfg.BudgetBytes {
		// Only possible with explicit Width/Depth/TopK overrides.
		return nil, fmt.Errorf("sketch: fixed overhead %d exceeds budget %d", t.fixed, cfg.BudgetBytes)
	}
	t.exactMax = cfg.BudgetBytes - t.fixed
	reserve := cfg.ElephantReserve
	if reserve <= 0 {
		reserve = 0.10
	}
	if reserve > 0.5 {
		reserve = 0.5
	}
	t.miceMax = int64(float64(t.exactMax) * (1 - reserve))
	t.snap.Store(&Snapshot{})
	return t, nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ipBytes is the packet's IP-layer length — the volume unit the sketch
// counts. Summaries without a filled length field (synthetic tests) charge
// the 40-byte header floor so packet counting still works.
func ipBytes(s *pkt.Summary) uint64 {
	var n uint64
	if s.IPv6 {
		n = 40 + uint64(s.IP6.PayloadLen)
	} else {
		n = uint64(s.IP4.TotalLen)
	}
	if n == 0 {
		n = 40
	}
	return n
}

// flowIDOf canonicalizes the packet's 4-tuple.
func flowIDOf(s *pkt.Summary) FlowID {
	src, dst := s.Src(), s.Dst()
	sp, dp := s.TCP.SrcPort, s.TCP.DstPort
	if dst.Less(src) || (src == dst && dp < sp) {
		return FlowID{A: dst, B: src, APort: dp, BPort: sp}
	}
	return FlowID{A: src, B: dst, APort: sp, BPort: dp}
}

// hashFlowID is the 64-bit key hash feeding the count-min rows.
func hashFlowID(id FlowID) uint64 {
	var buf [36]byte
	a := id.A.As16()
	b := id.B.As16()
	copy(buf[0:16], a[:])
	copy(buf[16:32], b[:])
	binary.BigEndian.PutUint16(buf[32:34], id.APort)
	binary.BigEndian.PutUint16(buf[34:36], id.BPort)
	return hashx.FNV1a64(buf[:])
}

// Observe accounts one parsed TCP packet: volume into the count-min
// sketch and both heavy-hitter summaries, and the flow's elephant verdict
// retained for a following Admit. Implements core.Admitter.
//
//ruru:noalloc
func (t *FlowTier) Observe(s *pkt.Summary) {
	if !s.IsTCP() {
		return
	}
	n := ipBytes(s)
	id := flowIDOf(s)
	est := t.cms.Update(hashFlowID(id), n)
	t.flows.Update(id, n)

	bits := 24
	if s.IPv6 {
		bits = 48
	}
	if pfx, err := s.Src().Prefix(bits); err == nil {
		t.prefixes.Update(pfx, n)
	}

	t.lastElephant = t.isElephant(est)
	t.sincePub++
}

// isElephant: the flow's sketched volume clears both the absolute floor
// and the relative heavy-hitter bar (Total/K, the space-saving guarantee
// threshold).
func (t *FlowTier) isElephant(est uint64) bool {
	if est < t.elephantMin {
		return false
	}
	return est >= t.cms.Total()/uint64(t.flows.K())
}

// Admit charges entryBytes of exact state for the last Observed flow.
// Mice admit while the mice ceiling holds; elephants may dig into the
// reserve up to the full exact ceiling. Refusals leave the flow
// sketch-only and are counted. Implements core.Admitter.
//
//ruru:noalloc
func (t *FlowTier) Admit(entryBytes int64) (ok, promoted bool) {
	limit := t.miceMax
	if t.lastElephant {
		limit = t.exactMax
	}
	if t.live+entryBytes > limit {
		t.sketchOnly++
		return false, false
	}
	t.live += entryBytes
	if t.lastElephant {
		t.promoted++
		return true, true
	}
	return true, false
}

// Release returns entryBytes to the budget. Implements core.Admitter.
//
//ruru:noalloc
func (t *FlowTier) Release(entryBytes int64, promoted bool) {
	t.live -= entryBytes
	if t.live < 0 {
		// Release without a matching Admit is a caller bug; clamp so the
		// budget invariant (and the fuzz target asserting it) stays
		// meaningful rather than compounding.
		t.live = 0
	}
	if promoted {
		t.demoted++
	}
}

// Publish copies the heavy-hitter summaries into a fresh Snapshot for
// concurrent readers. With force=false the copy is throttled to once per
// PublishEvery observations (the engine calls it every burst); force=true
// publishes unconditionally (worker shutdown, tests). Implements
// core.Admitter.
func (t *FlowTier) Publish(force bool) {
	if !force && t.sincePub < t.publishEvery {
		return
	}
	snap := &Snapshot{
		Flows:    t.flows.Top(make([]Item[FlowID], 0, t.flows.Len()), 0),
		Prefixes: t.prefixes.Top(make([]Item[netip.Prefix], 0, t.prefixes.Len()), 0),
	}
	t.snap.Store(snap)
	t.sincePub = 0
}

// Snapshot returns the most recently published heavy-hitter copy. Safe
// from any goroutine; never nil.
func (t *FlowTier) Snapshot() *Snapshot { return t.snap.Load() }

// Stats snapshots the ledger. Implements core.Admitter (single-writer).
func (t *FlowTier) Stats() core.SketchStats {
	return core.SketchStats{
		Promoted:        t.promoted,
		Demoted:         t.demoted,
		SketchOnlyFlows: t.sketchOnly,
		EpsilonBytes:    t.cms.ErrorBound(),
		CollisionDepth:  t.cms.CollisionDepth(),
		LiveBytes:       t.live,
		SketchBytes:     t.fixed,
		BudgetBytes:     t.budget,
	}
}

// TotalBytes returns charged exact state plus fixed overhead — the number
// the budget invariant bounds: TotalBytes() <= BudgetBytes, always.
func (t *FlowTier) TotalBytes() int64 { return t.fixed + t.live }

// Budget returns the configured hard cap.
func (t *FlowTier) Budget() int64 { return t.budget }
