package sketch

import (
	"encoding/binary"
	"net/netip"
	"testing"

	"ruru/internal/pkt"
)

// FuzzSketch drives a FlowTier through an arbitrary op stream — packet
// observations, admissions, releases — decoded from the fuzz input, and
// asserts the tier's three load-bearing invariants after every op:
//
//   - count-min estimates never undercount the exact oracle
//   - per-key estimates are monotone (counters only grow)
//   - the byte budget is never exceeded: TotalBytes() <= Budget(), always
//
// Op encoding, 5 bytes each: [op%4, host, incLo, incHi, entrySize].
func FuzzSketch(f *testing.F) {
	// Seed corpus: an observe-heavy stream, an admit/release churn, and a
	// mixed stream that exercises refusal (tiny budget, fat entries).
	f.Add([]byte{0, 1, 100, 0, 0, 0, 2, 200, 1, 0, 1, 1, 44, 5, 0})
	f.Add([]byte{2, 0, 0, 0, 200, 2, 0, 0, 0, 200, 3, 0, 0, 0, 0, 3, 0, 0, 0, 0})
	f.Add([]byte{0, 7, 220, 5, 0, 2, 7, 0, 0, 255, 1, 7, 220, 5, 0, 3, 0, 0, 0, 0, 2, 9, 0, 0, 64})

	f.Fuzz(func(t *testing.T, data []byte) {
		tier, err := NewFlowTier(TierConfig{BudgetBytes: MinBudgetBytes() + 4096})
		if err != nil {
			t.Fatal(err)
		}
		truth := make(map[uint64]uint64)
		lastEst := make(map[uint64]uint64)
		type charge struct {
			bytes    int64
			promoted bool
		}
		var charges []charge

		var s pkt.Summary
		s.Decoded = pkt.LayerEthernet | pkt.LayerIPv4 | pkt.LayerTCP
		s.IP4.Dst = netip.AddrFrom4([4]byte{192, 0, 2, 1})
		s.TCP = pkt.TCP{SrcPort: 40000, DstPort: 443, Flags: pkt.TCPAck, Seq: 1, Ack: 1}

		for len(data) >= 5 {
			op, host := data[0]%4, data[1]
			inc := binary.LittleEndian.Uint16(data[2:4])%1500 + 1
			entry := int64(data[4]) + 1
			data = data[5:]

			switch op {
			case 0, 1:
				s.IP4.Src = netip.AddrFrom4([4]byte{10, 0, 0, host})
				s.IP4.TotalLen = inc
				tier.Observe(&s)
				h := hashFlowID(flowIDOf(&s))
				truth[h] += uint64(inc)
				est := tier.cms.Estimate(h)
				if est < truth[h] {
					t.Fatalf("underestimate: host %d est %d < truth %d", host, est, truth[h])
				}
				if est < lastEst[h] {
					t.Fatalf("non-monotone: host %d est %d after %d", host, est, lastEst[h])
				}
				lastEst[h] = est
			case 2:
				if ok, promoted := tier.Admit(entry); ok {
					charges = append(charges, charge{entry, promoted})
				}
			case 3:
				if n := len(charges); n > 0 {
					c := charges[n-1]
					charges = charges[:n-1]
					tier.Release(c.bytes, c.promoted)
				}
			}
			if tier.TotalBytes() > tier.Budget() {
				t.Fatalf("budget exceeded: %d > %d (live %d, %d charges)",
					tier.TotalBytes(), tier.Budget(), tier.Stats().LiveBytes, len(charges))
			}
		}

		// End-state ledger: the stats must balance what we actually did.
		st := tier.Stats()
		var held int64
		for _, c := range charges {
			held += c.bytes
		}
		if st.LiveBytes != held {
			t.Fatalf("ledger drift: LiveBytes %d, held %d", st.LiveBytes, held)
		}
		if st.Demoted > st.Promoted {
			t.Fatalf("more demotions (%d) than promotions (%d)", st.Demoted, st.Promoted)
		}
	})
}
