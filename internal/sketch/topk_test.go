package sketch

import (
	"math/rand"
	"testing"
)

func TestTopKBasics(t *testing.T) {
	tk := NewTopK[string](8)
	if tk.K() != 8 || tk.Len() != 0 || tk.Min() != 0 {
		t.Fatalf("fresh summary: k=%d len=%d min=%d", tk.K(), tk.Len(), tk.Min())
	}
	tk.Update("a", 10)
	tk.Update("b", 5)
	tk.Update("a", 1)
	if got, ok := tk.Estimate("a"); !ok || got != 11 {
		t.Fatalf("estimate a = %d,%v", got, ok)
	}
	if !tk.Contains("b") || tk.Contains("z") {
		t.Fatal("containment wrong")
	}
	if tk.Total() != 16 {
		t.Fatalf("total = %d", tk.Total())
	}
	top := tk.Top(nil, 1)
	if len(top) != 1 || top[0].Key != "a" || top[0].Count != 11 || top[0].Err != 0 {
		t.Fatalf("top = %+v", top)
	}
}

func TestTopKReplacementInheritsError(t *testing.T) {
	tk := NewTopK[int](8)
	for i := 0; i < 8; i++ {
		tk.Update(i, uint64(10+i))
	}
	// Key 100 replaces the minimum (key 0, count 10) and inherits it.
	tk.Update(100, 1)
	if tk.Contains(0) {
		t.Fatal("minimum not evicted")
	}
	got, ok := tk.Estimate(100)
	if !ok || got != 11 {
		t.Fatalf("newcomer count = %d", got)
	}
	items := tk.Top(nil, 0)
	for _, it := range items {
		if it.Key == 100 && it.Err != 10 {
			t.Fatalf("newcomer err = %d, want inherited 10", it.Err)
		}
	}
	if tk.Evictions() != 1 {
		t.Fatalf("evictions = %d", tk.Evictions())
	}
}

// TestTopKPropertyVsOracle: randomized trials against an exact frequency
// map (seed printed on failure). The space-saving contract:
//
//   - tracked counts never undercount: Count >= truth
//   - the error bound is honest: Count - Err <= truth
//   - superset guarantee: every key with truth > Total/k is tracked
func TestTopKPropertyVsOracle(t *testing.T) {
	const trials = 60
	for seed := int64(1); seed <= trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 16 + rng.Intn(64)
		tk := NewTopK[uint64](k)
		truth := make(map[uint64]uint64)

		nkeys := k * (2 + rng.Intn(8))
		zipf := rand.NewZipf(rng, 1.1, 1, uint64(nkeys-1))
		updates := 3000 + rng.Intn(10000)
		for u := 0; u < updates; u++ {
			key := zipf.Uint64()
			inc := uint64(1 + rng.Intn(100))
			truth[key] += inc
			tk.Update(key, inc)
		}

		if tk.Total() == 0 {
			t.Fatalf("seed %d: zero total", seed)
		}
		for _, it := range tk.Top(nil, 0) {
			want := truth[it.Key]
			if it.Count < want {
				t.Fatalf("seed %d: key %d undercounted: %d < %d", seed, it.Key, it.Count, want)
			}
			if it.Count-it.Err > want {
				t.Fatalf("seed %d: key %d lower bound broken: %d-%d > %d",
					seed, it.Key, it.Count, it.Err, want)
			}
		}
		bar := tk.Total() / uint64(k)
		for key, want := range truth {
			if want > bar && !tk.Contains(key) {
				t.Fatalf("seed %d: heavy key %d (truth %d > total/k %d) not tracked",
					seed, key, want, bar)
			}
		}
	}
}

func TestTopKHeapStaysConsistent(t *testing.T) {
	tk := NewTopK[int](32)
	rng := rand.New(rand.NewSource(3))
	for u := 0; u < 20000; u++ {
		tk.Update(rng.Intn(500), uint64(1+rng.Intn(50)))
		if u%1000 != 0 {
			continue
		}
		// Heap invariant plus index-map consistency.
		for i := 1; i < tk.Len(); i++ {
			if tk.items[(i-1)/2].Count > tk.items[i].Count {
				t.Fatalf("heap violated at %d after %d updates", i, u)
			}
		}
		for key, pos := range tk.idx {
			if tk.items[pos].Key != key {
				t.Fatalf("idx desync for key %d", key)
			}
		}
	}
}

func TestTopKLatencyAggregate(t *testing.T) {
	tk := NewTopK[string](8)
	tk.UpdateLat("akl→lon", 1, 120)
	tk.UpdateLat("akl→lon", 1, 80)
	tk.UpdateLat("akl→lon", 1, 100)
	top := tk.Top(nil, 1)
	lat := top[0].Lat
	if lat.Count != 3 || lat.Min != 80 || lat.Max != 120 || lat.Sum != 300 {
		t.Fatalf("aggregate = %+v", lat)
	}
}

func TestTopKSteadyStateNoAlloc(t *testing.T) {
	tk := NewTopK[uint64](64)
	for i := uint64(0); i < 64; i++ {
		tk.Update(i, i+1)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tk.Update(7, 3)          // tracked-key fast path
		tk.Update(1_000_000, 1)  // replace-min path
		tk.UpdateLat(8, 1, 42.0) // tracked with aggregate
	})
	if allocs != 0 {
		t.Fatalf("steady-state Update allocates %.1f/op", allocs)
	}
}
