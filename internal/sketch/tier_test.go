package sketch

import (
	"net/netip"
	"testing"

	"ruru/internal/pkt"
)

// tierSummary fabricates a parsed TCP summary carrying totalLen volume
// bytes between two synthetic hosts.
func tierSummary(hostA, hostB byte, sp, dp uint16, totalLen uint16) *pkt.Summary {
	s := &pkt.Summary{}
	s.IP4.Src = netip.AddrFrom4([4]byte{10, 0, 0, hostA})
	s.IP4.Dst = netip.AddrFrom4([4]byte{192, 0, 2, hostB})
	s.IP4.TotalLen = totalLen
	s.Decoded = pkt.LayerEthernet | pkt.LayerIPv4 | pkt.LayerTCP
	s.TCP = pkt.TCP{SrcPort: sp, DstPort: dp, Flags: pkt.TCPAck, Seq: 1, Ack: 1}
	return s
}

func newTestTier(t *testing.T, cfg TierConfig) *FlowTier {
	t.Helper()
	tier, err := NewFlowTier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tier
}

func TestTierBudgetValidation(t *testing.T) {
	if _, err := NewFlowTier(TierConfig{BudgetBytes: MinBudgetBytes() - 1}); err == nil {
		t.Fatal("sub-minimum budget accepted")
	}
	tier := newTestTier(t, TierConfig{BudgetBytes: MinBudgetBytes()})
	if tier.exactMax != 0 {
		t.Fatalf("minimum budget should leave zero exact headroom, got %d", tier.exactMax)
	}
	// Oversized explicit shape must be refused, not silently overspend.
	if _, err := NewFlowTier(TierConfig{BudgetBytes: MinBudgetBytes(), Width: 1 << 16}); err == nil {
		t.Fatal("fixed overhead above budget accepted")
	}
}

func TestTierAutoSizingScalesWithBudget(t *testing.T) {
	small := newTestTier(t, TierConfig{BudgetBytes: 1 << 20})
	big := newTestTier(t, TierConfig{BudgetBytes: 64 << 20})
	if big.cms.Width() <= small.cms.Width() {
		t.Fatalf("cms width did not grow: %d vs %d", big.cms.Width(), small.cms.Width())
	}
	if big.flows.K() <= small.flows.K() {
		t.Fatalf("flow top-K did not grow: %d vs %d", big.flows.K(), small.flows.K())
	}
	for _, tier := range []*FlowTier{small, big} {
		if tier.fixed+tier.exactMax != tier.budget {
			t.Fatalf("budget split broken: fixed %d + exactMax %d != %d",
				tier.fixed, tier.exactMax, tier.budget)
		}
		if tier.miceMax >= tier.exactMax {
			t.Fatalf("no elephant reserve: miceMax %d exactMax %d", tier.miceMax, tier.exactMax)
		}
	}
}

func TestTierAdmitReleaseLedger(t *testing.T) {
	tier := newTestTier(t, TierConfig{BudgetBytes: MinBudgetBytes() + 1000})
	const entry = 100
	admitted := 0
	for i := 0; i < 50; i++ {
		ok, promoted := tier.Admit(entry)
		if promoted {
			t.Fatal("mouse promoted without observation")
		}
		if !ok {
			break
		}
		admitted++
		if tier.TotalBytes() > tier.Budget() {
			t.Fatalf("budget exceeded: %d > %d", tier.TotalBytes(), tier.Budget())
		}
	}
	// miceMax = 0.9 * 1000 = 900 → exactly 9 entries of 100 bytes.
	if admitted != 9 {
		t.Fatalf("admitted %d mice, want 9", admitted)
	}
	st := tier.Stats()
	if st.SketchOnlyFlows != 1 || st.LiveBytes != int64(admitted*entry) {
		t.Fatalf("stats = %+v", st)
	}
	for i := 0; i < admitted; i++ {
		tier.Release(entry, false)
	}
	if tier.Stats().LiveBytes != 0 {
		t.Fatalf("live after release = %d", tier.Stats().LiveBytes)
	}
	// Clamp: a spurious Release must not drive the ledger negative.
	tier.Release(entry, false)
	if got := tier.Stats().LiveBytes; got != 0 {
		t.Fatalf("live went negative: %d", got)
	}
}

func TestTierElephantPromotionAndReserve(t *testing.T) {
	tier := newTestTier(t, TierConfig{
		BudgetBytes:      MinBudgetBytes() + 1000,
		ElephantMinBytes: 10_000,
	})
	const entry = 100

	// Fill the mice region completely.
	for {
		if ok, _ := tier.Admit(entry); !ok {
			break
		}
	}
	if ok, _ := tier.Admit(entry); ok {
		t.Fatal("mouse admitted past miceMax")
	}

	// A fat flow observed repeatedly becomes an elephant and may use the
	// reserve the mice could not touch.
	fat := tierSummary(1, 2, 40000, 443, 1500)
	for i := 0; i < 20; i++ {
		tier.Observe(fat)
	}
	if !tier.lastElephant {
		t.Fatalf("20x1500B flow not an elephant (est floor %d, total %d)",
			tier.elephantMin, tier.cms.Total())
	}
	ok, promoted := tier.Admit(entry)
	if !ok || !promoted {
		t.Fatalf("elephant refused the reserve: ok=%v promoted=%v", ok, promoted)
	}
	st := tier.Stats()
	if st.Promoted != 1 {
		t.Fatalf("promoted = %d", st.Promoted)
	}
	tier.Release(entry, true)
	if tier.Stats().Demoted != 1 {
		t.Fatalf("demoted = %d", tier.Stats().Demoted)
	}

	// A skinny flow seen once resets the verdict: no promotion.
	tier.Observe(tierSummary(3, 4, 40001, 443, 60))
	if tier.lastElephant {
		t.Fatal("60B flow judged elephant")
	}
}

func TestTierObserveFeedsSketchAndSummaries(t *testing.T) {
	tier := newTestTier(t, TierConfig{BudgetBytes: 1 << 20})
	s := tierSummary(1, 2, 40000, 443, 500)
	for i := 0; i < 4; i++ {
		tier.Observe(s)
	}
	// Reverse direction folds into the same canonical flow.
	rev := tierSummary(2, 1, 443, 40000, 0) // TotalLen 0 → 40B floor
	rev.IP4.Src, rev.IP4.Dst = s.IP4.Dst, s.IP4.Src
	rev.TCP.SrcPort, rev.TCP.DstPort = 443, 40000
	tier.Observe(rev)

	id := flowIDOf(s)
	if got := tier.cms.Estimate(hashFlowID(id)); got < 4*500+40 {
		t.Fatalf("cms estimate = %d, want >= 2040", got)
	}
	if got, ok := tier.flows.Estimate(id); !ok || got < 2040 {
		t.Fatalf("flow top-k estimate = %d,%v", got, ok)
	}
	pfx, _ := s.Src().Prefix(24)
	if got, ok := tier.prefixes.Estimate(pfx); !ok || got < 4*500 {
		t.Fatalf("prefix estimate = %d,%v", got, ok)
	}

	// Non-TCP summaries are ignored.
	udp := &pkt.Summary{}
	udp.IP4.Src = s.IP4.Src
	udp.Decoded = pkt.LayerEthernet | pkt.LayerIPv4
	before := tier.cms.Total()
	tier.Observe(udp)
	if tier.cms.Total() != before {
		t.Fatal("non-TCP packet counted")
	}
}

func TestTierPublishThrottleAndForce(t *testing.T) {
	tier := newTestTier(t, TierConfig{BudgetBytes: 1 << 20, PublishEvery: 8})
	s := tierSummary(1, 2, 40000, 443, 100)
	tier.Observe(s)
	tier.Publish(false)
	if got := tier.Snapshot(); len(got.Flows) != 0 {
		t.Fatalf("throttled publish leaked %d flows", len(got.Flows))
	}
	tier.Publish(true)
	snap := tier.Snapshot()
	if len(snap.Flows) != 1 || len(snap.Prefixes) != 1 {
		t.Fatalf("forced snapshot = %d flows / %d prefixes", len(snap.Flows), len(snap.Prefixes))
	}
	for i := 0; i < 8; i++ {
		tier.Observe(s)
	}
	tier.Publish(false)
	if got := tier.Snapshot(); got == snap {
		t.Fatal("publish threshold reached but snapshot not replaced")
	}
}

func TestTierIPv6PrefixWidth(t *testing.T) {
	tier := newTestTier(t, TierConfig{BudgetBytes: 1 << 20})
	s := &pkt.Summary{IPv6: true}
	s.IP6.Src = netip.MustParseAddr("2001:db8:aa:bb::1")
	s.IP6.Dst = netip.MustParseAddr("2001:db8:cc:dd::2")
	s.IP6.PayloadLen = 960
	s.Decoded = pkt.LayerEthernet | pkt.LayerIPv6 | pkt.LayerTCP
	s.TCP = pkt.TCP{SrcPort: 40000, DstPort: 443, Flags: pkt.TCPAck}
	tier.Observe(s)
	pfx, _ := s.Src().Prefix(48)
	if got, ok := tier.prefixes.Estimate(pfx); !ok || got != 1000 {
		t.Fatalf("v6 /48 estimate = %d,%v (want 40+960)", got, ok)
	}
}
