// Package bench defines the persisted benchmark trajectory: a fixed suite
// of hot-path microbenchmarks runnable from a plain binary (cmd/ruru-bench
// -json) via testing.Benchmark, emitting a machine-readable BENCH_*.json
// that CI checks in per PR and diffs against the previous entry
// (scripts/bench_compare.sh). The suite intentionally mirrors the shapes of
// the top-level bench_test.go benchmarks so `go test -bench` and the JSON
// trajectory measure the same code paths.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"net/netip"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ruru/internal/analytics"
	"ruru/internal/core"
	"ruru/internal/experiments"
	"ruru/internal/gen"
	"ruru/internal/geo"
	"ruru/internal/nic"
	"ruru/internal/pkt"
	"ruru/internal/rss"
	"ruru/internal/ruru"
	"ruru/internal/sketch"
	"ruru/internal/tsdb"
	"ruru/internal/ws"
)

// Schema is the BENCH_*.json format version.
const Schema = 1

// Result is one benchmark's measurement in the JSON trajectory.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Metrics carries benchmark-specific extras (b.ReportMetric), e.g.
	// "pps" — sustained TSDB points/second.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the serialized form of one trajectory entry.
type File struct {
	Schema     int               `json:"schema"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	CPUs       int               `json:"cpus"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Spec is one suite entry.
type Spec struct {
	Name string
	F    func(b *testing.B)
}

// Specs returns the trajectory suite: one entry per pipeline hot path —
// ingest hand-off, packet processing, sink drain, DB writes (legacy and
// interned-ref), WAL-logged writes, and tier-served queries.
func Specs() []Spec {
	return []Spec{
		{Name: "ingest/burst", F: benchIngestBurst},
		{Name: "process/handshake", F: benchHandshake},
		{Name: "core/tsrtt", F: benchTSRTT},
		{Name: "core/seq-rtt", F: benchSeqRTT},
		{Name: "sink/consume", F: benchSinkConsume},
		{Name: "db/write-batch", F: benchDBWriteBatch},
		{Name: "db/write-batch-ref", F: benchDBWriteBatchRef},
		{Name: "db/write-batch-ref-steady", F: benchDBWriteBatchRefSteady},
		{Name: "wal/write-interval", F: benchWALWrite},
		{Name: "query/rollup", F: benchRollupQuery},
		{Name: "query/cached", F: benchCachedQuery},
		{Name: "ws/delta-broadcast", F: benchDeltaBroadcast},
		{Name: "sketch/update", F: benchSketchUpdate},
		{Name: "sketch/topk", F: benchSketchTopK},
	}
}

// Run executes the whole suite and returns the trajectory entry.
// Progress lines go to w (pass io.Discard to silence).
func Run(w io.Writer) File {
	f := File{
		Schema:     Schema,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Benchmarks: make(map[string]Result),
	}
	for _, s := range Specs() {
		r := testing.Benchmark(s.F)
		res := Result{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BPerOp:      r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		f.Benchmarks[s.Name] = res
		fmt.Fprintf(w, "%-22s %12.1f ns/op %8d B/op %6d allocs/op%s\n",
			s.Name, res.NsPerOp, res.BPerOp, res.AllocsPerOp, fmtMetrics(res.Metrics))
	}
	return f
}

func fmtMetrics(m map[string]float64) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf(" %12.0f %s", m[k], k)
	}
	return s
}

// WriteJSON serializes f deterministically (sorted keys, trailing newline).
func WriteJSON(w io.Writer, f File) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// --- suite bodies -----------------------------------------------------------

// benchIngestBurst: inject → RSS queue → RxBurst → recycle, batched
// (bench_test.go BenchmarkIngest/burst).
func benchIngestBurst(b *testing.B) {
	const burst = 64
	pool := nic.NewMempool(8192, 2048)
	port, err := nic.NewPort(nic.PortConfig{Queues: 1, QueueDepth: 4096, Pool: pool})
	if err != nil {
		b.Fatal(err)
	}
	spec := &pkt.TCPFrameSpec{
		SrcMAC: pkt.MAC{1}, DstMAC: pkt.MAC{2},
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("192.0.2.1"),
		SrcPort: 40000, DstPort: 443, Flags: pkt.TCPSyn, Window: 65535,
	}
	buf := make([]byte, 128)
	n, err := pkt.BuildTCPFrame(buf, spec)
	if err != nil {
		b.Fatal(err)
	}
	f := buf[:n]
	frames := make([]nic.Frame, burst)
	hashes := make([]uint32, burst)
	for i := range frames {
		frames[i] = nic.Frame{Data: f, TS: int64(i)}
		hashes[i] = uint32(i)
	}
	bufs := make([]*nic.Buf, burst)
	b.ReportAllocs()
	b.SetBytes(int64(len(f)))
	b.ResetTimer()
	for i := 0; i < b.N; i += burst {
		port.InjectPreclassifiedBurst(frames, hashes)
		got, _ := port.RxBurst(0, bufs)
		for j := 0; j < got; j++ {
			bufs[j].Free()
		}
	}
}

// benchHandshake: parse + RSS hash + handshake-table processing per packet
// (bench_test.go BenchmarkE1HandshakeEngine).
func benchHandshake(b *testing.B) {
	w, err := geo.NewWorld(geo.WorldOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	g, err := gen.New(gen.Config{
		Seed: 1, World: w,
		FlowRate: 10000, Duration: 1e15,
		DataSegments: 2, UDPRate: 2000, MidstreamRate: 200,
	})
	if err != nil {
		b.Fatal(err)
	}
	trace := make([]gen.TracePacket, 0, 50000)
	var p gen.Packet
	for len(trace) < 50000 && g.Next(&p) {
		frame := make([]byte, len(p.Frame))
		copy(frame, p.Frame)
		trace = append(trace, gen.TracePacket{TS: p.TS, Frame: frame})
	}
	table := core.NewHandshakeTable(core.TableConfig{Capacity: 1 << 17, Timeout: 1 << 62})
	h := rss.NewSymmetric()
	var parser pkt.Parser
	var sum pkt.Summary
	var m core.Measurement
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := &trace[i%len(trace)]
		if err := parser.Parse(tp.Frame, &sum); err != nil || !sum.IsTCP() {
			continue
		}
		hash := h.HashTuple(sum.Src(), sum.Dst(), sum.TCP.SrcPort, sum.TCP.DstPort)
		table.Process(&sum, tp.TS, hash, &m)
	}
}

// benchSummary builds a parsed TCP summary directly (the trackers' input —
// parse cost is measured by process/handshake, these entries isolate the
// per-packet tracker work the continuous-RTT path adds).
func benchSummary(hostA, hostB byte, sp, dp uint16, seq, ack uint32, payload []byte) (*pkt.Summary, uint32) {
	s := &pkt.Summary{}
	s.IP4.Src = netip.AddrFrom4([4]byte{10, 0, 0, hostA})
	s.IP4.Dst = netip.AddrFrom4([4]byte{192, 0, 2, hostB})
	s.Decoded = pkt.LayerEthernet | pkt.LayerIPv4 | pkt.LayerTCP
	s.TCP = pkt.TCP{SrcPort: sp, DstPort: dp, Flags: pkt.TCPAck, Seq: seq, Ack: ack}
	s.Payload = payload
	return s, rss.NewSymmetric().HashTuple(s.IP4.Src, s.IP4.Dst, sp, dp)
}

// benchTSRTT: the timestamp tracker's per-packet cost — a TSval insert and
// its echo match per op, alternating over 256 live flows (tsrtt_test.go
// BenchmarkTSTrackerProcess, multi-flow).
func benchTSRTT(b *testing.B) {
	const flows = 256
	tr := core.NewTSTracker(core.TSConfig{Capacity: 1 << 15})
	type flow struct {
		data, echo *pkt.Summary
		hash       uint32
	}
	var fl [flows]flow
	var opt [pkt.TimestampOptionLen]byte
	for i := range fl {
		d, h := benchSummary(byte(i), 1, uint16(5000+i), 443, 1000, 1, nil)
		d.TCP.Options = append([]byte(nil), pkt.PutTimestampOption(opt[:], 100, 50)...)
		e, _ := benchSummary(1, byte(i), 443, uint16(5000+i), 1, 1000, nil)
		e.TCP.Options = append([]byte(nil), pkt.PutTimestampOption(opt[:], 900, 100)...)
		fl[i] = flow{data: d, echo: e, hash: h}
	}
	var sample core.TSSample
	b.ReportAllocs()
	b.ResetTimer()
	ts := int64(0)
	for i := 0; i < b.N; i++ {
		f := &fl[i%flows]
		ts += 2
		tr.Process(f.data, ts, f.hash, &sample)
		tr.Process(f.echo, ts+1, f.hash, &sample)
	}
	b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "pps")
}

// benchSeqRTT: the sequence tracker's per-packet cost — a data edge insert
// and its covering ACK per op (one RTT sample), alternating over 256 live
// flows; the hot path is //ruru:noalloc and the trajectory pins
// allocs_per_op at 0 (seqrtt_test.go BenchmarkSeqTrackerProcess,
// multi-flow).
func benchSeqRTT(b *testing.B) {
	const flows = 256
	tr := core.NewSeqTracker(core.SeqConfig{Capacity: 1 << 15})
	type flow struct {
		data, ackp *pkt.Summary
		hash       uint32
	}
	var fl [flows]flow
	payload := make([]byte, 100)
	for i := range fl {
		d, h := benchSummary(byte(i), 1, uint16(5000+i), 443, 1000, 1, payload)
		a, _ := benchSummary(1, byte(i), 443, uint16(5000+i), 1, 1100, nil)
		fl[i] = flow{data: d, ackp: a, hash: h}
	}
	var sample core.SeqSample
	var loss core.LossEvent
	b.ReportAllocs()
	b.ResetTimer()
	ts := int64(0)
	for i := 0; i < b.N; i++ {
		f := &fl[i%flows]
		ts += 2
		f.data.TCP.Seq += 100
		f.ackp.TCP.Ack += 100
		tr.Process(f.data, ts, f.hash, &sample, &loss)
		tr.Process(f.ackp, ts+1, f.hash, &sample, &loss)
	}
	b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "pps")
}

// benchSinkConsume: enriched topic → sharded sink workers → batched
// interned-ref TSDB writes (bench_test.go BenchmarkConsume, 4 workers).
func benchSinkConsume(b *testing.B) {
	b.ReportAllocs()
	msgs := b.N
	if msgs < 20000 {
		msgs = 20000
	}
	rows, err := experiments.E11(experiments.E11Config{
		WorkerList: []int{4}, Messages: msgs,
	}, io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	if rows[0].Drops != 0 {
		b.Fatalf("sink dropped %d measurements", rows[0].Drops)
	}
	b.ReportMetric(rows[0].Rate, "msg/s")
}

func dbBatchOpts(stripes int) tsdb.Options {
	return tsdb.Options{ShardDuration: 1e9, Retention: 2e9, Stripes: stripes}
}

// benchDBWriteBatch: the legacy string-keyed batched write path, 8 stripes
// (bench_test.go BenchmarkDBWriteBatch/stripes-8).
func benchDBWriteBatch(b *testing.B) {
	const batchLen = 64
	db := tsdb.Open(dbBatchOpts(8))
	var worker, clock atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		city := "City" + fmt.Sprint(worker.Add(1))
		batch := make([]tsdb.Point, batchLen)
		for pb.Next() {
			t := clock.Add(batchLen*1e6) - batchLen*1e6
			for i := range batch {
				t += 1e6
				batch[i] = tsdb.Point{
					Name: "latency",
					Tags: []tsdb.Tag{
						{Key: "src_city", Value: city},
						{Key: "dst_city", Value: "Los Angeles"},
					},
					Fields: []tsdb.Field{
						{Key: "internal_ms", Value: 15},
						{Key: "external_ms", Value: 130},
						{Key: "total_ms", Value: 145},
					},
					Time: t,
				}
			}
			if _, err := db.WriteBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	reportPPS(b, batchLen)
}

// benchDBWriteBatchRef: the interned-handle zero-alloc write path, same
// shape as benchDBWriteBatch (bench_test.go BenchmarkDBWriteBatchRef).
func benchDBWriteBatchRef(b *testing.B) {
	const batchLen = 64
	db := tsdb.Open(dbBatchOpts(8))
	var worker, clock atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		city := "City" + fmt.Sprint(worker.Add(1))
		ref, err := db.Ref("latency",
			[]tsdb.Tag{
				{Key: "src_city", Value: city},
				{Key: "dst_city", Value: "Los Angeles"},
			},
			"internal_ms", "external_ms", "total_ms")
		if err != nil {
			b.Fatal(err)
		}
		batch := make([]tsdb.RefPoint, batchLen)
		vals := make([]float64, 3*batchLen)
		for i := range batch {
			v := vals[3*i : 3*i+3 : 3*i+3]
			v[0], v[1], v[2] = 15, 130, 145
			batch[i] = tsdb.RefPoint{Ref: ref, Vals: v}
		}
		for pb.Next() {
			t := clock.Add(batchLen*1e6) - batchLen*1e6
			for i := range batch {
				t += 1e6
				batch[i].Time = t
			}
			if _, err := db.WriteBatchRef(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	reportPPS(b, batchLen)
}

// benchDBWriteBatchRefSteady pins the zero-alloc claim in the trajectory:
// a single writer on the interned-ref path with long shards, so shard
// churn amortizes away and allocs_per_op records the steady state — 0
// allocation events per 64-point batch. B/op stays nonzero: it is the
// amortized cost of column storage growth (rare doubling reallocations),
// bytes without per-op allocation events. The AllocsPerRun unit test pins
// the same property exactly (pre-grown storage); this entry tracks it
// release over release.
func benchDBWriteBatchRefSteady(b *testing.B) {
	const batchLen = 64
	db := tsdb.Open(tsdb.Options{ShardDuration: 60e9, Retention: 120e9})
	ref, err := db.Ref("latency",
		[]tsdb.Tag{
			{Key: "src_city", Value: "Auckland"},
			{Key: "dst_city", Value: "Los Angeles"},
		},
		"internal_ms", "external_ms", "total_ms")
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]tsdb.RefPoint, batchLen)
	vals := make([]float64, 3*batchLen)
	for i := range batch {
		v := vals[3*i : 3*i+3 : 3*i+3]
		v[0], v[1], v[2] = 15, 130, 145
		batch[i] = tsdb.RefPoint{Ref: ref, Vals: v}
	}
	var t int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			t += 1e6
			batch[j].Time = t
		}
		if _, err := db.WriteBatchRef(batch); err != nil {
			b.Fatal(err)
		}
	}
	reportPPS(b, batchLen)
}

// benchWALWrite: one 64-point batch per op, WAL-logged at the production
// default fsync policy (bench_test.go BenchmarkWriteWAL/wal-interval).
func benchWALWrite(b *testing.B) {
	const batchLen = 64
	db, err := tsdb.OpenDB(tsdb.Options{
		Persist: &tsdb.PersistOptions{
			Dir: b.TempDir(), Fsync: tsdb.FsyncInterval, CheckpointEvery: -1,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			b.Error(err)
		}
	}()
	batch := make([]tsdb.Point, batchLen)
	var t int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			t += 1e6
			batch[j] = tsdb.Point{
				Name: "latency",
				Tags: []tsdb.Tag{
					{Key: "src_city", Value: "Auckland"},
					{Key: "dst_city", Value: "Los Angeles"},
				},
				Fields: []tsdb.Field{
					{Key: "internal_ms", Value: 15},
					{Key: "external_ms", Value: 130},
					{Key: "total_ms", Value: 145},
				},
				Time: t,
			}
		}
		if _, err := db.WriteBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	reportPPS(b, batchLen)
}

// benchRollupQuery: a grouped, windowed query served from a rollup tier
// over a pre-populated DB — the dashboard read path.
func benchRollupQuery(b *testing.B) {
	db := tsdb.Open(tsdb.Options{
		ShardDuration: 10e9,
		Rollups:       []tsdb.RollupTier{{Width: 1e9}, {Width: 10e9}},
	})
	cities := []string{"Auckland", "Wellington", "Sydney", "Tokyo"}
	const nPoints = 100000
	batch := make([]tsdb.RefPoint, 0, 256)
	vals := make([]float64, 0, 256)
	refs := make([]tsdb.SeriesRef, len(cities))
	for i, c := range cities {
		ref, err := db.Ref("latency",
			[]tsdb.Tag{{Key: "src_city", Value: c}, {Key: "dst_city", Value: "Los Angeles"}},
			"total_ms")
		if err != nil {
			b.Fatal(err)
		}
		refs[i] = ref
	}
	for i := 0; i < nPoints; i++ {
		vals = append(vals, float64(1+i%997))
		batch = append(batch, tsdb.RefPoint{
			Ref: refs[i%len(refs)], Time: int64(i) * 1e6,
			Vals: vals[len(vals)-1 : len(vals) : len(vals)],
		})
		if len(batch) == cap(batch) {
			if _, err := db.WriteBatchRef(batch); err != nil {
				b.Fatal(err)
			}
			batch, vals = batch[:0], vals[:0]
		}
	}
	q := tsdb.Query{
		Measurement: "latency", Field: "total_ms",
		Start: 0, End: 100e9, Window: 10e9, GroupBy: "src_city",
		Aggs: []tsdb.AggKind{tsdb.AggCount, tsdb.AggMin, tsdb.AggMax, tsdb.AggSum, tsdb.AggMean},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Execute(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(cities) {
			b.Fatalf("got %d groups", len(res))
		}
	}
}

// benchCachedQuery: the live-dashboard read path through the query result
// cache — the same advancing-window shape BenchmarkQueryCached pins at
// ≥10× over uncached tier execution, tracked here release over release.
// Each op re-issues a 10-minute window advanced by one 10s bucket, so
// steady state is one cache hit plus an incremental tail refresh.
func benchCachedQuery(b *testing.B) {
	db := tsdb.Open(tsdb.Options{
		ShardDuration: 60e9,
		Rollups:       []tsdb.RollupTier{{Width: 1e9}},
		QueryCache:    16 << 20,
	})
	cities := []string{"Auckland", "Wellington", "Sydney", "Tokyo"}
	refs := make([]tsdb.SeriesRef, len(cities))
	for i, c := range cities {
		ref, err := db.Ref("latency",
			[]tsdb.Tag{{Key: "src_city", Value: c}, {Key: "dst_city", Value: "Los Angeles"}},
			"total_ms")
		if err != nil {
			b.Fatal(err)
		}
		refs[i] = ref
	}
	// 1200s of data at 4 series × 10 points/s.
	const span = int64(1200e9)
	batch := make([]tsdb.RefPoint, 0, 256)
	vals := make([]float64, 0, 256)
	for i := int64(0); i < span/1e8; i++ {
		vals = append(vals, float64(1+i%997))
		batch = append(batch, tsdb.RefPoint{
			Ref: refs[i%int64(len(refs))], Time: i * 1e8,
			Vals: vals[len(vals)-1 : len(vals) : len(vals)],
		})
		if len(batch) == cap(batch) {
			if _, err := db.WriteBatchRef(batch); err != nil {
				b.Fatal(err)
			}
			batch, vals = batch[:0], vals[:0]
		}
	}
	const (
		window   = int64(10e9)
		lookback = int64(600e9)
	)
	q := tsdb.Query{
		Measurement: "latency", Field: "total_ms",
		Window: window, GroupBy: "src_city",
		Aggs: []tsdb.AggKind{tsdb.AggCount, tsdb.AggMean, tsdb.AggP95},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (int64(i) * window) % (span - lookback)
		q.Start, q.End = off, off+lookback
		res, err := db.Execute(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(cities) {
			b.Fatalf("got %d groups", len(res))
		}
	}
}

// benchDeltaBroadcast: the rollup-stream read side — fold a 64-measurement
// burst over 16 city pairs into the delta accumulator, coalesce it into one
// frame and broadcast to 8 /ws?stream=rollup clients. The whole per-op cost
// is independent of the client count except for the final per-client queue
// push, which is the point of the delta feed.
func benchDeltaBroadcast(b *testing.B) {
	hub := ws.NewHub(1 << 16)
	defer hub.Close()
	srv := httptest.NewServer(hub)
	defer srv.Close()
	url := "ws://" + strings.TrimPrefix(srv.URL, "http://") + "/?stream=rollup"
	for i := 0; i < 8; i++ {
		c, err := ws.Dial(url)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		go func() {
			for {
				if _, _, err := c.ReadMessage(); err != nil {
					return
				}
			}
		}()
	}
	for hub.RollupClients() < 8 {
		time.Sleep(time.Millisecond)
	}
	d := ruru.NewRollupDelta(1e9)
	const burst = 64
	srcs := []string{"Auckland", "Wellington", "Sydney", "Tokyo"}
	dsts := []string{"Los Angeles", "London", "Tokyo", "Frankfurt"}
	events := make([]analytics.Enriched, burst)
	for i := range events {
		events[i] = analytics.Enriched{
			TotalNs: int64(145e6 + i*1e6),
			Src:     analytics.Endpoint{City: srcs[i%len(srcs)]},
			Dst:     analytics.Endpoint{City: dsts[(i/len(srcs))%len(dsts)]},
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var t int64
	for i := 0; i < b.N; i++ {
		for j := range events {
			t += 15625000 // 64 events/s of data time
			events[j].Time = t
			d.Add(&events[j])
		}
		if frame := d.Flush(); frame != nil {
			hub.BroadcastRollup(frame)
		}
	}
	b.ReportMetric(float64(b.N)*burst/b.Elapsed().Seconds(), "events/s")
}

func reportPPS(b *testing.B, pointsPerOp int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)*float64(pointsPerOp)/s, "pps")
	}
}

// benchSketchUpdate: the bounded-memory tier's per-packet cost — a
// conservative-update count-min write plus the space-saving flow and
// /24-prefix heavy-hitter updates — steady state over 256 tracked flows
// (all hot paths //ruru:noalloc; the trajectory pins allocs_per_op at 0).
func benchSketchUpdate(b *testing.B) {
	tier, err := sketch.NewFlowTier(sketch.TierConfig{BudgetBytes: 16 << 20})
	if err != nil {
		b.Fatal(err)
	}
	const flows = 256
	var fl [flows]*pkt.Summary
	for i := range fl {
		s, _ := benchSummary(byte(i), 1, uint16(5000+i), 443, 1000, 1, nil)
		s.IP4.TotalLen = 1500
		fl[i] = s
	}
	// Warm-up: every flow tracked, so the loop measures the steady-state
	// update path, not summary churn.
	for i := range fl {
		tier.Observe(fl[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tier.Observe(fl[i%flows])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pps")
}

// benchSketchTopK: the /api/topk serving cost — rank the 10 largest of a
// full 1024-entry heavy-hitter summary into a reused buffer per op
// (sketch.TopK.Top; 0 allocs/op once the buffer is warm). Sized to stay
// cache-resident so the trajectory tracks the ranking code, not memory
// pressure from the rest of the suite.
func benchSketchTopK(b *testing.B) {
	const keys = 1024
	tk := sketch.NewTopK[sketch.FlowID](keys)
	for i := 0; i < keys; i++ {
		id := sketch.FlowID{
			A:     netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}),
			B:     netip.AddrFrom4([4]byte{192, 0, 2, 1}),
			APort: uint16(i), BPort: 443,
		}
		tk.Update(id, uint64(i+1)*7919)
	}
	dst := make([]sketch.Item[sketch.FlowID], 0, keys)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = tk.Top(dst[:0], 10)
	}
}
