// Package ring provides a lock-free single-producer/single-consumer ring
// buffer used as the hand-off between pipeline stages: NIC RX queues feed
// per-core workers exactly the way DPDK rings feed lcores in the Ruru paper.
//
// The ring is a power-of-two circular array with separate head and tail
// indices. Producer and consumer each own one index and only read the other,
// so a single atomic load/store pair per operation suffices. Indices live on
// separate cache lines to avoid false sharing between the producer and
// consumer cores.
package ring

import (
	"errors"
	"sync/atomic"
)

// ErrBadCapacity is returned by New when capacity is not a power of two.
var ErrBadCapacity = errors.New("ring: capacity must be a power of two and > 0")

type pad [56]byte // pads a uint64 to a full 64-byte cache line

// Ring is a lock-free SPSC queue of values of type T.
// The zero value is not usable; call New.
type Ring[T any] struct {
	buf  []T
	mask uint64

	head atomic.Uint64 // next slot to pop (owned by consumer)
	_    pad
	tail atomic.Uint64 // next slot to push (owned by producer)
	_    pad
}

// New returns a ring with the given capacity, which must be a power of two.
func New[T any](capacity int) (*Ring[T], error) {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		return nil, ErrBadCapacity
	}
	return &Ring[T]{
		buf:  make([]T, capacity),
		mask: uint64(capacity - 1),
	}, nil
}

// MustNew is New that panics on error, for package-level initialization.
func MustNew[T any](capacity int) *Ring[T] {
	r, err := New[T](capacity)
	if err != nil {
		panic(err)
	}
	return r
}

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the number of queued items. It is an instantaneous snapshot
// and only advisory under concurrency.
func (r *Ring[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Push enqueues v. It returns false when the ring is full (the caller drops
// or retries — the NIC layer counts this as an imissed, like a real NIC).
func (r *Ring[T]) Push(v T) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[tail&r.mask] = v
	r.tail.Store(tail + 1)
	return true
}

// Pop dequeues one item, reporting whether one was available.
func (r *Ring[T]) Pop() (T, bool) {
	var zero T
	head := r.head.Load()
	if head == r.tail.Load() {
		return zero, false
	}
	v := r.buf[head&r.mask]
	r.buf[head&r.mask] = zero // release references for GC
	r.head.Store(head + 1)
	return v, true
}

// PushBurst enqueues as many items from vs as fit, returning the count.
// This is the DPDK rte_ring_enqueue_burst analogue: one atomic round-trip
// amortized over the whole burst.
func (r *Ring[T]) PushBurst(vs []T) int {
	tail := r.tail.Load()
	free := uint64(len(r.buf)) - (tail - r.head.Load())
	n := uint64(len(vs))
	if n > free {
		n = free
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(tail+i)&r.mask] = vs[i]
	}
	r.tail.Store(tail + n)
	return int(n)
}

// PopBurst dequeues up to len(out) items into out, returning the count.
func (r *Ring[T]) PopBurst(out []T) int {
	var zero T
	head := r.head.Load()
	avail := r.tail.Load() - head
	n := uint64(len(out))
	if n > avail {
		n = avail
	}
	for i := uint64(0); i < n; i++ {
		idx := (head + i) & r.mask
		out[i] = r.buf[idx]
		r.buf[idx] = zero
	}
	r.head.Store(head + n)
	return int(n)
}
