// Package ring provides the lock-free ring buffers used as the hand-off
// between pipeline stages: NIC RX queues feed per-core workers exactly the
// way DPDK rings feed lcores in the Ruru paper.
//
// Two implementations share the Buffer interface:
//
//   - Ring is single-producer/single-consumer (the rte_ring SP/SC fast
//     path): one atomic load/store pair per operation, no CAS.
//   - MPRing is multi-producer/multi-consumer (the rte_ring MP/MC mode):
//     CAS-reserved slots with per-slot sequence numbers, safe for any
//     number of concurrent producers and consumers.
//
// Both are power-of-two circular arrays with burst push/pop that amortize
// synchronization over whole bursts, and both expose capacity, free-space
// and high-watermark introspection so upper layers can implement
// backpressure instead of discovering overflow after the fact.
package ring

import (
	"errors"
	"sync/atomic"
)

// ErrBadCapacity is returned by New when capacity is not a power of two.
var ErrBadCapacity = errors.New("ring: capacity must be a power of two and > 0")

type pad [56]byte // pads a uint64 to a full 64-byte cache line

// Buffer is the queue contract shared by Ring (SPSC) and MPRing (MPMC).
// The nic layer programs against this interface so a port can swap the
// single-consumer fast path for the multi-consumer ring per configuration.
type Buffer[T any] interface {
	// Cap returns the fixed capacity.
	Cap() int
	// Len returns the instantaneous queued-item count (advisory under
	// concurrency).
	Len() int
	// Free returns Cap()-Len(): the instantaneous admission headroom.
	Free() int
	// Watermark returns the highest queue depth observed by any push so
	// far — the burst headroom actually consumed over the ring's life.
	Watermark() int
	// Push enqueues one item, reporting acceptance.
	Push(v T) bool
	// Pop dequeues one item, reporting whether one was available.
	Pop() (T, bool)
	// PushBurst enqueues as many items from vs as fit, returning the count.
	PushBurst(vs []T) int
	// PopBurst dequeues up to len(out) items into out, returning the count.
	PopBurst(out []T) int
}

// Ring is a lock-free SPSC queue of values of type T.
// The zero value is not usable; call New.
//
// Contract: exactly one goroutine may push and exactly one may pop. The
// producer owns tail, the consumer owns head; each only loads the other's
// index, so no CAS is needed. Violating the single-consumer side loses or
// duplicates items — use MPRing when multiple workers drain one queue.
type Ring[T any] struct {
	buf  []T
	mask uint64

	head atomic.Uint64 // next slot to pop (owned by consumer)
	_    pad
	tail atomic.Uint64 // next slot to push (owned by producer)
	_    pad
	// maxLen is the highest depth observed at push time. Only the
	// producer stores it (single-writer), monitors load it.
	maxLen atomic.Uint64
	_      pad
}

// New returns a ring with the given capacity, which must be a power of two.
func New[T any](capacity int) (*Ring[T], error) {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		return nil, ErrBadCapacity
	}
	return &Ring[T]{
		buf:  make([]T, capacity),
		mask: uint64(capacity - 1),
	}, nil
}

// MustNew is New that panics on error, for package-level initialization.
func MustNew[T any](capacity int) *Ring[T] {
	r, err := New[T](capacity)
	if err != nil {
		panic(err)
	}
	return r
}

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the number of queued items. It is an instantaneous snapshot
// and only advisory under concurrency.
func (r *Ring[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Free returns the instantaneous admission headroom.
func (r *Ring[T]) Free() int { return len(r.buf) - r.Len() }

// Watermark returns the highest depth any push has observed.
func (r *Ring[T]) Watermark() int { return int(r.maxLen.Load()) }

// note records depth at push time; producer-only, so a plain store race
// cannot occur and the value is monotonic.
func (r *Ring[T]) note(depth uint64) {
	if depth > r.maxLen.Load() {
		r.maxLen.Store(depth)
	}
}

// Push enqueues v. It returns false when the ring is full (the caller drops
// or retries — the NIC layer counts this as an imissed, like a real NIC).
//
//ruru:noalloc
func (r *Ring[T]) Push(v T) bool {
	tail := r.tail.Load()
	depth := tail - r.head.Load()
	if depth >= uint64(len(r.buf)) {
		return false
	}
	r.buf[tail&r.mask] = v
	r.tail.Store(tail + 1)
	r.note(depth + 1)
	return true
}

// Pop dequeues one item, reporting whether one was available.
//
//ruru:noalloc
func (r *Ring[T]) Pop() (T, bool) {
	var zero T
	head := r.head.Load()
	if head == r.tail.Load() {
		return zero, false
	}
	v := r.buf[head&r.mask]
	r.buf[head&r.mask] = zero // release references for GC
	r.head.Store(head + 1)
	return v, true
}

// PushBurst enqueues as many items from vs as fit, returning the count.
// This is the DPDK rte_ring_enqueue_burst analogue: one atomic round-trip
// amortized over the whole burst.
//
//ruru:noalloc
func (r *Ring[T]) PushBurst(vs []T) int {
	tail := r.tail.Load()
	used := tail - r.head.Load()
	free := uint64(len(r.buf)) - used
	n := uint64(len(vs))
	if n > free {
		n = free
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(tail+i)&r.mask] = vs[i]
	}
	r.tail.Store(tail + n)
	r.note(used + n)
	return int(n)
}

// PopBurst dequeues up to len(out) items into out, returning the count.
//
//ruru:noalloc
func (r *Ring[T]) PopBurst(out []T) int {
	var zero T
	head := r.head.Load()
	avail := r.tail.Load() - head
	n := uint64(len(out))
	if n > avail {
		n = avail
	}
	for i := uint64(0); i < n; i++ {
		idx := (head + i) & r.mask
		out[i] = r.buf[idx]
		r.buf[idx] = zero
	}
	r.head.Store(head + n)
	return int(n)
}
