package ring

import "sync/atomic"

// MPRing is a lock-free multi-producer/multi-consumer bounded queue: the
// rte_ring MP/MC analogue. Any number of goroutines may push and pop
// concurrently; every item is delivered exactly once.
//
// The design is the classic bounded MPMC queue (Vyukov): each slot carries
// a sequence number. A slot at absolute position pos is free for a producer
// when seq == pos, holds a published item for a consumer when seq == pos+1,
// and is returned to the next lap's producer by storing seq = pos+Cap after
// the pop. Producers and consumers reserve runs of slots with a single CAS
// on the shared tail/head index, so burst operations pay one CAS per burst
// rather than one per item.
//
// The zero value is not usable; call NewMP.
type MPRing[T any] struct {
	buf  []mpSlot[T]
	mask uint64

	head   atomic.Uint64 // next slot to pop
	_      pad
	tail   atomic.Uint64 // next slot to push
	_      pad
	maxLen atomic.Uint64 // high watermark (CAS-updated; advisory)
	_      pad
}

type mpSlot[T any] struct {
	seq atomic.Uint64
	val T
}

// NewMP returns a multi-producer/multi-consumer ring with the given
// capacity, which must be a power of two.
func NewMP[T any](capacity int) (*MPRing[T], error) {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		return nil, ErrBadCapacity
	}
	r := &MPRing[T]{
		buf:  make([]mpSlot[T], capacity),
		mask: uint64(capacity - 1),
	}
	for i := range r.buf {
		r.buf[i].seq.Store(uint64(i))
	}
	return r, nil
}

// MustNewMP is NewMP that panics on error.
func MustNewMP[T any](capacity int) *MPRing[T] {
	r, err := NewMP[T](capacity)
	if err != nil {
		panic(err)
	}
	return r
}

// Cap returns the ring capacity.
func (r *MPRing[T]) Cap() int { return len(r.buf) }

// Len returns the number of queued items (instantaneous, advisory).
func (r *MPRing[T]) Len() int {
	n := int(r.tail.Load()) - int(r.head.Load())
	if n < 0 {
		return 0
	}
	if n > len(r.buf) {
		return len(r.buf)
	}
	return n
}

// Free returns the instantaneous admission headroom.
func (r *MPRing[T]) Free() int { return len(r.buf) - r.Len() }

// Watermark returns the highest depth any push has observed.
func (r *MPRing[T]) Watermark() int { return int(r.maxLen.Load()) }

// noteDepth records the depth implied by having published up to tail.
// Concurrent consumers may already have drained past tail (head > tail),
// and concurrent producers may race the head load; clamp to [0, Cap] so a
// transient underflow can never wedge the watermark at a garbage value.
func (r *MPRing[T]) noteDepth(tail uint64) {
	head := r.head.Load()
	if head >= tail {
		return // consumers already caught up; nothing new to record
	}
	depth := tail - head
	if depth > uint64(len(r.buf)) {
		depth = uint64(len(r.buf))
	}
	for {
		cur := r.maxLen.Load()
		if depth <= cur || r.maxLen.CompareAndSwap(cur, depth) {
			return
		}
	}
}

// Push enqueues v, reporting acceptance. A false return means the ring is
// full (or a consumer is mid-pop on the wrapping slot — the same
// backpressure signal).
//
//ruru:noalloc
func (r *MPRing[T]) Push(v T) bool {
	for {
		tail := r.tail.Load()
		s := &r.buf[tail&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == tail: // slot free for this lap
			if r.tail.CompareAndSwap(tail, tail+1) {
				s.val = v
				s.seq.Store(tail + 1)
				r.noteDepth(tail + 1)
				return true
			}
		case seq < tail: // previous lap's item not yet consumed: full
			return false
		default: // another producer won this slot; reload tail
		}
	}
}

// Pop dequeues one item, reporting whether one was available.
//
//ruru:noalloc
func (r *MPRing[T]) Pop() (T, bool) {
	var zero T
	for {
		head := r.head.Load()
		s := &r.buf[head&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == head+1: // published item ready
			if r.head.CompareAndSwap(head, head+1) {
				v := s.val
				s.val = zero // release references for GC
				s.seq.Store(head + uint64(len(r.buf)))
				return v, true
			}
		case seq < head+1: // producer not done (or empty)
			return zero, false
		default: // another consumer won this slot; reload head
		}
	}
}

// PushBurst enqueues as many items from vs as fit, returning the count.
// A whole run of free slots is reserved with one CAS on tail; per-slot
// sequence publication then makes each item visible to consumers in order.
//
//ruru:noalloc
func (r *MPRing[T]) PushBurst(vs []T) int {
	total := 0
	for total < len(vs) {
		n := r.pushSome(vs[total:])
		if n == 0 {
			break
		}
		total += n
	}
	return total
}

//ruru:noalloc
func (r *MPRing[T]) pushSome(vs []T) int {
	for {
		tail := r.tail.Load()
		// Count consecutive free slots starting at tail.
		n := 0
		for n < len(vs) {
			pos := tail + uint64(n)
			seq := r.buf[pos&r.mask].seq.Load()
			if seq != pos {
				if seq < pos && n == 0 && r.tail.Load() == tail {
					return 0 // genuinely full at tail
				}
				break
			}
			n++
		}
		if n == 0 {
			// Lost a race to another producer; reload and retry.
			if r.tail.Load() == tail {
				return 0
			}
			continue
		}
		if !r.tail.CompareAndSwap(tail, tail+uint64(n)) {
			continue
		}
		// The run [tail, tail+n) is ours: the successful CAS from the same
		// tail we scanned from guarantees no other producer claimed it and
		// the scanned slots can only have stayed free.
		for i := 0; i < n; i++ {
			pos := tail + uint64(i)
			s := &r.buf[pos&r.mask]
			s.val = vs[i]
			s.seq.Store(pos + 1)
		}
		r.noteDepth(tail + uint64(n))
		return n
	}
}

// PopBurst dequeues up to len(out) items into out, returning the count.
//
//ruru:noalloc
func (r *MPRing[T]) PopBurst(out []T) int {
	total := 0
	for total < len(out) {
		n := r.popSome(out[total:])
		if n == 0 {
			break
		}
		total += n
	}
	return total
}

//ruru:noalloc
func (r *MPRing[T]) popSome(out []T) int {
	var zero T
	for {
		head := r.head.Load()
		// Count consecutive published slots starting at head.
		n := 0
		for n < len(out) {
			pos := head + uint64(n)
			seq := r.buf[pos&r.mask].seq.Load()
			if seq != pos+1 {
				break
			}
			n++
		}
		if n == 0 {
			if r.head.Load() == head {
				return 0 // genuinely empty (or producer mid-publish)
			}
			continue
		}
		if !r.head.CompareAndSwap(head, head+uint64(n)) {
			continue
		}
		for i := 0; i < n; i++ {
			pos := head + uint64(i)
			s := &r.buf[pos&r.mask]
			out[i] = s.val
			s.val = zero
			s.seq.Store(pos + uint64(len(r.buf)))
		}
		return n
	}
}

// Interface conformance: both rings satisfy Buffer.
var (
	_ Buffer[int] = (*Ring[int])(nil)
	_ Buffer[int] = (*MPRing[int])(nil)
)
