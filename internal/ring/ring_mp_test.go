package ring

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMPNewValidation(t *testing.T) {
	for _, n := range []int{0, -1, 3, 6, 1000} {
		if _, err := NewMP[int](n); err != ErrBadCapacity {
			t.Errorf("NewMP(%d) err = %v, want ErrBadCapacity", n, err)
		}
	}
	for _, n := range []int{1, 2, 4, 1024} {
		r, err := NewMP[int](n)
		if err != nil || r.Cap() != n {
			t.Errorf("NewMP(%d) = %v, %v", n, r, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewMP(3) did not panic")
		}
	}()
	MustNewMP[int](3)
}

func TestMPPushPopFIFO(t *testing.T) {
	r := MustNewMP[int](8)
	for i := 0; i < 8; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Push(99) {
		t.Fatal("push into full ring succeeded")
	}
	if r.Len() != 8 || r.Free() != 0 {
		t.Fatalf("Len/Free = %d/%d", r.Len(), r.Free())
	}
	for i := 0; i < 8; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d, %v", i, v, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	if r.Watermark() != 8 {
		t.Fatalf("watermark = %d", r.Watermark())
	}
}

func TestMPBurstWrapAround(t *testing.T) {
	r := MustNewMP[int](8)
	out := make([]int, 8)
	next, expect := 0, 0
	for round := 0; round < 200; round++ {
		in := []int{next, next + 1, next + 2, next + 3, next + 4}
		n := r.PushBurst(in)
		next += n
		got := r.PopBurst(out[:3])
		for i := 0; i < got; i++ {
			if out[i] != expect {
				t.Fatalf("round %d: out[%d] = %d, want %d", round, i, out[i], expect)
			}
			expect++
		}
	}
	// Drain the remainder.
	for {
		n := r.PopBurst(out)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			if out[i] != expect {
				t.Fatalf("drain: got %d want %d", out[i], expect)
			}
			expect++
		}
	}
	if expect != next {
		t.Fatalf("drained %d, pushed %d", expect, next)
	}
}

func TestMPPopReleasesReferences(t *testing.T) {
	r := MustNewMP[*int](4)
	v := new(int)
	r.Push(v)
	r.Pop()
	if r.buf[0].val != nil {
		t.Fatal("slot not cleared after Pop")
	}
	r.Push(v)
	out := make([]*int, 1)
	r.PopBurst(out)
	if r.buf[1].val != nil {
		t.Fatal("slot not cleared after PopBurst")
	}
}

// TestMPMCStress is the exactly-once contract under full contention:
// N producers × M consumers, mixed single and burst operations, run with
// -race in CI. Every pushed value must be received exactly once.
func TestMPMCStress(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 20000
	)
	r := MustNewMP[uint64](256)
	var wg sync.WaitGroup
	var received atomic.Uint64
	var sum atomic.Uint64
	done := make(chan struct{})

	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			out := make([]uint64, 32)
			for {
				var n int
				if c%2 == 0 {
					n = r.PopBurst(out)
				} else {
					if v, ok := r.Pop(); ok {
						out[0], n = v, 1
					}
				}
				for i := 0; i < n; i++ {
					sum.Add(out[i])
					received.Add(1)
				}
				if n == 0 {
					select {
					case <-done:
						// Producers finished: drain until empty.
						for {
							n := r.PopBurst(out)
							if n == 0 {
								return
							}
							for i := 0; i < n; i++ {
								sum.Add(out[i])
								received.Add(1)
							}
						}
					default:
						runtime.Gosched()
					}
				}
			}
		}(c)
	}

	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			base := uint64(p) * perProd
			if p%2 == 0 {
				buf := make([]uint64, 16)
				next := uint64(0)
				for next < perProd {
					n := 0
					for n < len(buf) && next+uint64(n) < perProd {
						buf[n] = base + next + uint64(n)
						n++
					}
					pushed := r.PushBurst(buf[:n])
					next += uint64(pushed)
					if pushed == 0 {
						runtime.Gosched()
					}
				}
			} else {
				for i := uint64(0); i < perProd; {
					if r.Push(base + i) {
						i++
					} else {
						runtime.Gosched()
					}
				}
			}
		}(p)
	}
	pwg.Wait()
	close(done)
	wg.Wait()

	const total = producers * perProd
	if got := received.Load(); got != total {
		t.Fatalf("received %d, want %d (lost or duplicated items)", got, total)
	}
	// Sum of 0..total-1: catches value-level duplication/loss even when
	// counts happen to balance.
	want := uint64(total) * (total - 1) / 2
	if got := sum.Load(); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if r.Len() != 0 {
		t.Fatalf("ring not empty: %d", r.Len())
	}
	// The watermark must stay a plausible depth under full contention
	// (the head can race ahead of a producer's depth computation; the
	// clamp must keep it in range rather than wedging at an underflow).
	if wm := r.Watermark(); wm <= 0 || wm > r.Cap() {
		t.Fatalf("watermark %d outside (0, %d]", wm, r.Cap())
	}
}

// TestMPSingleThreadedMatchesSPSC pins behavioural equivalence of the two
// implementations through the shared Buffer interface.
func TestMPSingleThreadedMatchesSPSC(t *testing.T) {
	impls := map[string]Buffer[int]{
		"spsc": MustNew[int](16),
		"mpmc": MustNewMP[int](16),
	}
	for name, r := range impls {
		in := []int{1, 2, 3, 4, 5}
		out := make([]int, 8)
		if r.Cap() != 16 || r.Free() != 16 {
			t.Fatalf("%s: cap/free = %d/%d", name, r.Cap(), r.Free())
		}
		if n := r.PushBurst(in); n != 5 {
			t.Fatalf("%s: PushBurst = %d", name, n)
		}
		if r.Len() != 5 || r.Free() != 11 || r.Watermark() != 5 {
			t.Fatalf("%s: len/free/watermark = %d/%d/%d", name, r.Len(), r.Free(), r.Watermark())
		}
		if n := r.PopBurst(out); n != 5 {
			t.Fatalf("%s: PopBurst = %d", name, n)
		}
		for i, v := range out[:5] {
			if v != in[i] {
				t.Fatalf("%s: out[%d] = %d", name, i, v)
			}
		}
		if !r.Push(9) {
			t.Fatalf("%s: Push failed", name)
		}
		if v, ok := r.Pop(); !ok || v != 9 {
			t.Fatalf("%s: Pop = %d, %v", name, v, ok)
		}
	}
}

func BenchmarkMPPushPop(b *testing.B) {
	r := MustNewMP[uint64](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Push(uint64(i))
		r.Pop()
	}
}

func BenchmarkMPBurst32(b *testing.B) {
	r := MustNewMP[uint64](1024)
	in := make([]uint64, 32)
	out := make([]uint64, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.PushBurst(in)
		r.PopBurst(out)
	}
}
