package ring

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, -1, 3, 6, 1000} {
		if _, err := New[int](n); err != ErrBadCapacity {
			t.Errorf("New(%d) err = %v, want ErrBadCapacity", n, err)
		}
	}
	for _, n := range []int{1, 2, 4, 1024} {
		r, err := New[int](n)
		if err != nil || r.Cap() != n {
			t.Errorf("New(%d) = %v, %v", n, r, err)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(3) did not panic")
		}
	}()
	MustNew[int](3)
}

func TestPushPopFIFO(t *testing.T) {
	r := MustNew[int](8)
	for i := 0; i < 8; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Push(99) {
		t.Fatal("push into full ring succeeded")
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d", r.Len())
	}
	for i := 0; i < 8; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d, %v", i, v, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
}

func TestWrapAround(t *testing.T) {
	r := MustNew[int](4)
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			if !r.Push(round*10 + i) {
				t.Fatalf("push failed at round %d", round)
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.Pop()
			if !ok || v != round*10+i {
				t.Fatalf("round %d: pop = %d, %v", round, v, ok)
			}
		}
	}
}

func TestBurst(t *testing.T) {
	r := MustNew[int](8)
	in := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	n := r.PushBurst(in)
	if n != 8 {
		t.Fatalf("PushBurst = %d, want 8", n)
	}
	out := make([]int, 5)
	n = r.PopBurst(out)
	if n != 5 {
		t.Fatalf("PopBurst = %d, want 5", n)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	n = r.PopBurst(out)
	if n != 3 {
		t.Fatalf("second PopBurst = %d, want 3", n)
	}
	n = r.PopBurst(out)
	if n != 0 {
		t.Fatalf("empty PopBurst = %d", n)
	}
}

func TestPopReleasesReferences(t *testing.T) {
	r := MustNew[*int](4)
	v := new(int)
	r.Push(v)
	r.Pop()
	// The slot must be zeroed so the GC can collect v once callers drop it.
	if r.buf[0] != nil {
		t.Fatal("slot not cleared after Pop")
	}
	r.Push(v)
	out := make([]*int, 1)
	r.PopBurst(out)
	if r.buf[1] != nil {
		t.Fatal("slot not cleared after PopBurst")
	}
}

func TestConcurrentSPSC(t *testing.T) {
	r := MustNew[uint64](1024)
	const total = 1 << 18
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < total; {
			if r.Push(i) {
				i++
			}
		}
	}()
	var sum, count uint64
	go func() {
		defer wg.Done()
		for count < total {
			if v, ok := r.Pop(); ok {
				if v != count {
					t.Errorf("out of order: got %d want %d", v, count)
					return
				}
				sum += v
				count++
			}
		}
	}()
	wg.Wait()
	want := uint64(total) * (total - 1) / 2
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestConcurrentBurstSPSC(t *testing.T) {
	r := MustNew[uint64](256)
	const total = 1 << 16
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		buf := make([]uint64, 64)
		next := uint64(0)
		for next < total {
			n := 0
			for n < len(buf) && next+uint64(n) < total {
				buf[n] = next + uint64(n)
				n++
			}
			pushed := r.PushBurst(buf[:n])
			next += uint64(pushed)
		}
	}()
	go func() {
		defer wg.Done()
		buf := make([]uint64, 64)
		expect := uint64(0)
		for expect < total {
			n := r.PopBurst(buf)
			for i := 0; i < n; i++ {
				if buf[i] != expect {
					t.Errorf("out of order: got %d want %d", buf[i], expect)
					return
				}
				expect++
			}
		}
	}()
	wg.Wait()
}

func TestLenNeverExceedsCap(t *testing.T) {
	f := func(ops []bool) bool {
		r := MustNew[int](16)
		for _, push := range ops {
			if push {
				r.Push(1)
			} else {
				r.Pop()
			}
			if l := r.Len(); l < 0 || l > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSPSCSingleConsumerContract pins the Ring's concurrency contract:
// exactly one producer and one consumer, mixed single and burst operations,
// strict FIFO with exactly-once delivery, and consistent introspection.
// Draining one Ring from several goroutines is NOT part of the contract —
// that loses or duplicates items by design; use MPRing (via
// nic.PortConfig.MultiConsumer) when multiple workers must share a queue.
func TestSPSCSingleConsumerContract(t *testing.T) {
	r := MustNew[uint64](64)
	const total = 1 << 16
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // the single producer
		defer wg.Done()
		buf := make([]uint64, 24)
		next := uint64(0)
		for next < total {
			if next%3 == 0 { // mix single pushes in
				if r.Push(next) {
					next++
				} else {
					runtime.Gosched() // full: let the consumer run
				}
				continue
			}
			n := 0
			for n < len(buf) && next+uint64(n) < total {
				v := next + uint64(n)
				if v%3 == 0 { // leave for the single-push branch
					break
				}
				buf[n] = v
				n++
			}
			pushed := r.PushBurst(buf[:n])
			next += uint64(pushed)
			if pushed == 0 {
				runtime.Gosched()
			}
		}
	}()
	go func() { // the single consumer
		defer wg.Done()
		out := make([]uint64, 17)
		expect := uint64(0)
		for expect < total {
			if expect%5 == 0 {
				if v, ok := r.Pop(); ok {
					if v != expect {
						t.Errorf("Pop out of order: got %d want %d", v, expect)
						return
					}
					expect++
				} else {
					runtime.Gosched() // empty: let the producer run
				}
				continue
			}
			n := r.PopBurst(out)
			for i := 0; i < n; i++ {
				if out[i] != expect {
					t.Errorf("PopBurst out of order: got %d want %d", out[i], expect)
					return
				}
				expect++
			}
			if n == 0 {
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	if r.Len() != 0 {
		t.Fatalf("ring not empty: %d", r.Len())
	}
	if wm := r.Watermark(); wm <= 0 || wm > r.Cap() {
		t.Fatalf("watermark %d outside (0, %d]", wm, r.Cap())
	}
	if r.Free() != r.Cap() {
		t.Fatalf("free = %d, want %d", r.Free(), r.Cap())
	}
}

func TestIntrospection(t *testing.T) {
	r := MustNew[int](8)
	if r.Free() != 8 || r.Watermark() != 0 {
		t.Fatalf("fresh ring: free=%d watermark=%d", r.Free(), r.Watermark())
	}
	r.PushBurst([]int{1, 2, 3, 4, 5})
	if r.Free() != 3 || r.Watermark() != 5 {
		t.Fatalf("after burst: free=%d watermark=%d", r.Free(), r.Watermark())
	}
	out := make([]int, 4)
	r.PopBurst(out)
	if r.Free() != 7 || r.Watermark() != 5 {
		t.Fatalf("after pop: free=%d watermark=%d (watermark must not recede)", r.Free(), r.Watermark())
	}
	r.Push(6)
	if r.Watermark() != 5 {
		t.Fatalf("watermark rose without a new high: %d", r.Watermark())
	}
}

func BenchmarkPushPop(b *testing.B) {
	r := MustNew[uint64](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Push(uint64(i))
		r.Pop()
	}
}

func BenchmarkBurst32(b *testing.B) {
	r := MustNew[uint64](1024)
	in := make([]uint64, 32)
	out := make([]uint64, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.PushBurst(in)
		r.PopBurst(out)
	}
}
