package analytics

import (
	"bytes"
	"testing"
)

func sampleEnriched(i int) Enriched {
	cities := []string{"Auckland", "Wellington", "", "São Paulo"}
	return Enriched{
		Time:       int64(i) * 1e9,
		InternalNs: int64(100+i) * 1e6,
		ExternalNs: int64(200+i) * 1e6,
		TotalNs:    int64(300+i) * 1e6,
		Src:        Endpoint{City: cities[i%len(cities)], CountryCode: "NZ", ASN: uint32(i * 7)},
		Dst:        Endpoint{City: cities[(i+1)%len(cities)], CountryCode: "US", ASN: uint32(i * 13)},
	}
}

// TestLatencyRefHelpersMatchLatencyPoint pins the zero-alloc sink helpers
// against the canonical LatencyPoint: zipping LatencyFieldKeys with
// AppendLatencyVals must reproduce LatencyPoint's Fields exactly, so the
// interned-ref write path stores bit-identical data to the legacy path.
func TestLatencyRefHelpersMatchLatencyPoint(t *testing.T) {
	for i := 0; i < 8; i++ {
		e := sampleEnriched(i)
		pt := LatencyPoint(&e)
		keys := LatencyFieldKeys()
		vals := AppendLatencyVals(nil, &e)
		if len(keys) != len(vals) || len(keys) != len(pt.Fields) {
			t.Fatalf("length mismatch: keys %d vals %d fields %d", len(keys), len(vals), len(pt.Fields))
		}
		for j := range keys {
			if pt.Fields[j].Key != keys[j] {
				t.Fatalf("field %d key: LatencyPoint %q, LatencyFieldKeys %q", j, pt.Fields[j].Key, keys[j])
			}
			if pt.Fields[j].Value != vals[j] {
				t.Fatalf("field %q value: LatencyPoint %v, AppendLatencyVals %v", keys[j], pt.Fields[j].Value, vals[j])
			}
		}
	}
}

// TestAppendLatencyKeyInjective pins that AppendLatencyKey distinguishes
// every tag-identity component of LatencyPoint — equal keys iff equal tag
// sets — including ambiguous-concatenation shapes ("ab"+"c" vs "a"+"bc").
func TestAppendLatencyKeyInjective(t *testing.T) {
	base := sampleEnriched(1)
	variants := []Enriched{base}
	mut := func(f func(*Enriched)) {
		e := base
		f(&e)
		variants = append(variants, e)
	}
	mut(func(e *Enriched) { e.Src.City = "X" })
	mut(func(e *Enriched) { e.Src.CountryCode = "AU" })
	mut(func(e *Enriched) { e.Src.ASN++ })
	mut(func(e *Enriched) { e.Dst.City = "X" })
	mut(func(e *Enriched) { e.Dst.CountryCode = "AU" })
	mut(func(e *Enriched) { e.Dst.ASN++ })
	mut(func(e *Enriched) { e.Src.City, e.Src.CountryCode = e.Src.City+"N", "Z" })
	// Non-identity components must NOT change the key.
	same := base
	same.Time += 5
	same.TotalNs += 5
	same.Src.Country = "different"
	same.Src.Lat = 1.25

	keys := make([][]byte, len(variants))
	for i := range variants {
		keys[i] = AppendLatencyKey(nil, &variants[i])
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if bytes.Equal(keys[i], keys[j]) {
				t.Fatalf("variants %d and %d collide: %q", i, j, keys[i])
			}
		}
	}
	if !bytes.Equal(AppendLatencyKey(nil, &same), keys[0]) {
		t.Fatalf("key depends on non-identity fields")
	}
}
