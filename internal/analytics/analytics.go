// Package analytics implements the Ruru Analytics stage (paper §2): it
// consumes raw latency measurements from the measurement engine over the
// message bus, resolves both endpoints against the geo/AS database with a
// pool of workers ("retrieve geographical locations ... using multiple
// threads"), strips the IP addresses for privacy, and republishes the
// enriched records for the storage and frontend stages.
package analytics

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"ruru/internal/core"
	"ruru/internal/geo"
	"ruru/internal/mq"
)

// Bus topics used by the pipeline stages.
const (
	// TopicRaw carries MarshalMeasurement payloads from the engine.
	TopicRaw = "ruru.raw"
	// TopicEnriched carries MarshalEnriched payloads to sinks.
	TopicEnriched = "ruru.enriched"
)

// Stats counts enricher outcomes.
type Stats struct {
	In           uint64 // raw measurements consumed
	Out          uint64 // enriched measurements published
	LookupMisses uint64 // endpoints not found in the geo DB
	DecodeErrors uint64 // malformed raw messages
	SubDropped   uint64 // raw messages dropped at our subscription HWM
}

// Config configures an Enricher.
type Config struct {
	// DB is the geo/AS database. Required.
	DB *geo.DB
	// Bus carries raw measurements in and enriched measurements out.
	// Required.
	Bus *mq.Bus
	// Workers is the enrichment pool size (default 4, the paper uses
	// "multiple threads").
	Workers int
	// HWM is the raw subscription high-water mark (default mq.DefaultHWM).
	HWM int
	// Filter, when non-nil, drops enriched measurements for which it
	// returns false before publication — the paper's pluggable filter
	// module ("one could add a filter module ... based on some criteria").
	Filter func(*Enriched) bool
}

// Enricher is the analytics stage.
type Enricher struct {
	cfg Config
	sub *mq.Subscription

	in           atomic.Uint64
	out          atomic.Uint64
	lookupMisses atomic.Uint64
	decodeErrors atomic.Uint64
}

// NewEnricher validates cfg and subscribes to the raw topic.
func NewEnricher(cfg Config) (*Enricher, error) {
	if cfg.DB == nil {
		return nil, errors.New("analytics: Config.DB is required")
	}
	if cfg.Bus == nil {
		return nil, errors.New("analytics: Config.Bus is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	sub, err := cfg.Bus.Subscribe(TopicRaw, cfg.HWM)
	if err != nil {
		return nil, err
	}
	return &Enricher{cfg: cfg, sub: sub}, nil
}

// Stats returns a snapshot of the stage counters.
func (e *Enricher) Stats() Stats {
	return Stats{
		In:           e.in.Load(),
		Out:          e.out.Load(),
		LookupMisses: e.lookupMisses.Load(),
		DecodeErrors: e.decodeErrors.Load(),
		SubDropped:   e.sub.Dropped(),
	}
}

// Run processes messages until ctx is cancelled or the bus closes.
func (e *Enricher) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.worker(ctx)
		}()
	}
	wg.Wait()
	return ctx.Err()
}

func (e *Enricher) worker(ctx context.Context) {
	var m core.Measurement
	var enriched Enriched
	scratch := make([]byte, 0, 512)
	for {
		select {
		case <-ctx.Done():
			return
		case msg, ok := <-e.sub.C():
			if !ok {
				return
			}
			e.in.Add(1)
			if err := UnmarshalMeasurement(msg.Payload, &m); err != nil {
				e.decodeErrors.Add(1)
				continue
			}
			e.enrich(&m, &enriched)
			if e.cfg.Filter != nil && !e.cfg.Filter(&enriched) {
				continue
			}
			scratch = MarshalEnriched(scratch, &enriched)
			// Publish with a copied payload: the bus does not copy and
			// scratch is reused on the next iteration.
			out := make([]byte, len(scratch))
			copy(out, scratch)
			e.cfg.Bus.Publish(mq.Message{Topic: TopicEnriched, Payload: out})
			e.out.Add(1)
		}
	}
}

// enrich resolves both endpoints and fills the anonymized record. This is
// the moment IP addresses leave the pipeline.
func (e *Enricher) enrich(m *core.Measurement, out *Enriched) {
	*out = Enriched{
		Time:       m.ACKTime,
		InternalNs: m.Internal,
		ExternalNs: m.External,
		TotalNs:    m.Total,
		IPv6:       m.IPv6,
		SYNRetrans: m.SYNRetrans,
	}
	if rec, ok := e.cfg.DB.Lookup(m.Flow.Client); ok {
		out.Src = Endpoint{CountryCode: rec.CountryCode, Country: rec.Country,
			City: rec.City, Lat: rec.Lat, Lon: rec.Lon, ASN: rec.ASN, ASName: rec.ASName}
	} else {
		e.lookupMisses.Add(1)
		out.Src = Endpoint{CountryCode: "??", Country: "Unknown", City: "Unknown"}
	}
	if rec, ok := e.cfg.DB.Lookup(m.Flow.Server); ok {
		out.Dst = Endpoint{CountryCode: rec.CountryCode, Country: rec.Country,
			City: rec.City, Lat: rec.Lat, Lon: rec.Lon, ASN: rec.ASN, ASName: rec.ASName}
	} else {
		e.lookupMisses.Add(1)
		out.Dst = Endpoint{CountryCode: "??", Country: "Unknown", City: "Unknown"}
	}
}

// BusSink adapts the message bus to the core.Sink interface: the engine's
// measurements are serialized and published on TopicRaw. Emit never blocks
// (bus semantics), so the measurement fast path cannot stall — slow
// consumers shed load at their HWM exactly like the paper's ZeroMQ sockets.
type BusSink struct {
	Bus *mq.Bus
}

// NewBusSink returns a sink publishing to bus.
func NewBusSink(bus *mq.Bus) *BusSink {
	return &BusSink{Bus: bus}
}

// Emit implements core.Sink. It costs one small allocation per measurement
// (the payload's ownership passes to the bus subscribers, so the buffer
// cannot be reused) — measurements arrive at connection rate, orders of
// magnitude below packet rate, so this is off the packet fast path.
func (s *BusSink) Emit(m *core.Measurement) {
	s.Bus.Publish(mq.Message{Topic: TopicRaw, Payload: MarshalMeasurement(nil, m)})
}
