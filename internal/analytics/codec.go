package analytics

import (
	"encoding/binary"
	"errors"
	"net/netip"
	"strconv"

	"ruru/internal/core"
	"ruru/internal/tsdb"
)

// Binary codecs for the two pipeline message types. The raw measurement
// codec is the wire format between the measurement engine and the analytics
// stage (the paper's first ZeroMQ hop: "source and destination IP addresses
// with the external and internal latency measurements"); the enriched codec
// is the second hop, after geolocation and IP removal.
//
// Layouts are fixed little-endian with a one-byte version prefix.

// ErrBadMessage reports a malformed or truncated encoded message.
var ErrBadMessage = errors.New("analytics: malformed message")

const (
	rawVersion      = 1
	enrichedVersion = 1
	rawSize         = 1 + 16 + 16 + 2 + 2 + 1 + 8*6 + 1 + 2
)

// MarshalMeasurement encodes m into buf (allocating if cap is short) and
// returns the encoded slice.
func MarshalMeasurement(buf []byte, m *core.Measurement) []byte {
	if cap(buf) < rawSize {
		buf = make([]byte, rawSize)
	}
	buf = buf[:rawSize]
	buf[0] = rawVersion
	c16 := m.Flow.Client.As16()
	s16 := m.Flow.Server.As16()
	copy(buf[1:17], c16[:])
	copy(buf[17:33], s16[:])
	binary.LittleEndian.PutUint16(buf[33:], m.Flow.ClientPort)
	binary.LittleEndian.PutUint16(buf[35:], m.Flow.ServerPort)
	if m.IPv6 {
		buf[37] = 1
	} else {
		buf[37] = 0
	}
	binary.LittleEndian.PutUint64(buf[38:], uint64(m.Internal))
	binary.LittleEndian.PutUint64(buf[46:], uint64(m.External))
	binary.LittleEndian.PutUint64(buf[54:], uint64(m.Total))
	binary.LittleEndian.PutUint64(buf[62:], uint64(m.SYNTime))
	binary.LittleEndian.PutUint64(buf[70:], uint64(m.SYNACKTime))
	binary.LittleEndian.PutUint64(buf[78:], uint64(m.ACKTime))
	buf[86] = m.SYNRetrans
	binary.LittleEndian.PutUint16(buf[87:], uint16(m.Queue))
	return buf
}

// UnmarshalMeasurement decodes a message produced by MarshalMeasurement.
func UnmarshalMeasurement(buf []byte, m *core.Measurement) error {
	if len(buf) != rawSize || buf[0] != rawVersion {
		return ErrBadMessage
	}
	var c16, s16 [16]byte
	copy(c16[:], buf[1:17])
	copy(s16[:], buf[17:33])
	m.IPv6 = buf[37] == 1
	if m.IPv6 {
		m.Flow.Client = netip.AddrFrom16(c16)
		m.Flow.Server = netip.AddrFrom16(s16)
	} else {
		m.Flow.Client = netip.AddrFrom16(c16).Unmap()
		m.Flow.Server = netip.AddrFrom16(s16).Unmap()
	}
	m.Flow.ClientPort = binary.LittleEndian.Uint16(buf[33:])
	m.Flow.ServerPort = binary.LittleEndian.Uint16(buf[35:])
	m.Internal = int64(binary.LittleEndian.Uint64(buf[38:]))
	m.External = int64(binary.LittleEndian.Uint64(buf[46:]))
	m.Total = int64(binary.LittleEndian.Uint64(buf[54:]))
	m.SYNTime = int64(binary.LittleEndian.Uint64(buf[62:]))
	m.SYNACKTime = int64(binary.LittleEndian.Uint64(buf[70:]))
	m.ACKTime = int64(binary.LittleEndian.Uint64(buf[78:]))
	m.SYNRetrans = buf[86]
	m.Queue = int(binary.LittleEndian.Uint16(buf[87:]))
	return nil
}

// Endpoint is the anonymized, geolocated side of a measurement.
type Endpoint struct {
	CountryCode string  `json:"cc"`
	Country     string  `json:"country"`
	City        string  `json:"city"`
	Lat         float64 `json:"lat"`
	Lon         float64 `json:"lon"`
	ASN         uint32  `json:"asn"`
	ASName      string  `json:"as_name"`
}

// Enriched is a measurement after geo/AS enrichment with the IP addresses
// removed (paper §2: "all original IP addresses are removed for privacy
// reasons"). This is what the TSDB and the frontends receive.
type Enriched struct {
	Time       int64    `json:"time"` // completion (ACK) timestamp, ns
	InternalNs int64    `json:"internal_ns"`
	ExternalNs int64    `json:"external_ns"`
	TotalNs    int64    `json:"total_ns"`
	IPv6       bool     `json:"ipv6"`
	SYNRetrans uint8    `json:"syn_retrans"`
	Src        Endpoint `json:"src"`
	Dst        Endpoint `json:"dst"`
}

// LatencyPoint converts one enriched measurement into its canonical TSDB
// point (the "latency" measurement, ms floats, geo/AS tags — the shape the
// Grafana panels and the query API expect). Every storage path must build
// points through this one function: the local sink stage and the
// federation probe's remote-write stream both use it, which is what makes
// a probe's remotely-written series identical to locally-written ones
// (modulo the probe tag the aggregator appends).
func LatencyPoint(e *Enriched) tsdb.Point {
	return tsdb.Point{
		Name: "latency",
		Tags: []tsdb.Tag{
			{Key: "src_city", Value: e.Src.City},
			{Key: "src_cc", Value: e.Src.CountryCode},
			{Key: "src_asn", Value: strconv.FormatUint(uint64(e.Src.ASN), 10)},
			{Key: "dst_city", Value: e.Dst.City},
			{Key: "dst_cc", Value: e.Dst.CountryCode},
			{Key: "dst_asn", Value: strconv.FormatUint(uint64(e.Dst.ASN), 10)},
		},
		Fields: []tsdb.Field{
			{Key: "internal_ms", Value: float64(e.InternalNs) / 1e6},
			{Key: "external_ms", Value: float64(e.ExternalNs) / 1e6},
			{Key: "total_ms", Value: float64(e.TotalNs) / 1e6},
		},
		Time: e.Time,
	}
}

// LatencyFieldKeys returns the field-key order of LatencyPoint — the field
// set a sink worker passes to tsdb.DB.Ref, matching the Vals order
// AppendLatencyVals emits. Pinned against LatencyPoint by test.
func LatencyFieldKeys() []string {
	return []string{"internal_ms", "external_ms", "total_ms"}
}

// AppendLatencyVals appends e's field values in LatencyFieldKeys order —
// the zero-alloc counterpart of LatencyPoint's Fields for the interned
// ref write path.
func AppendLatencyVals(vals []float64, e *Enriched) []float64 {
	return append(vals,
		float64(e.InternalNs)/1e6,
		float64(e.ExternalNs)/1e6,
		float64(e.TotalNs)/1e6)
}

// AppendLatencyKey appends an unambiguous identity key for e's latency
// series (the tag set of LatencyPoint) to buf — used by sink workers as the
// lookup key of their per-worker SeriesRef caches without building tag
// strings. Each component is length-prefixed; ASNs are appended as
// uvarints, so two distinct tag sets can never encode to the same key.
func AppendLatencyKey(buf []byte, e *Enriched) []byte {
	buf = appendLenStr(buf, e.Src.City)
	buf = appendLenStr(buf, e.Src.CountryCode)
	buf = binary.AppendUvarint(buf, uint64(e.Src.ASN))
	buf = appendLenStr(buf, e.Dst.City)
	buf = appendLenStr(buf, e.Dst.CountryCode)
	buf = binary.AppendUvarint(buf, uint64(e.Dst.ASN))
	return buf
}

func appendLenStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func putStr(buf []byte, s string) []byte {
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
	buf = append(buf, l[:]...)
	return append(buf, s...)
}

func getStr(buf []byte) (string, []byte, error) {
	if len(buf) < 2 {
		return "", nil, ErrBadMessage
	}
	n := int(binary.LittleEndian.Uint16(buf))
	if len(buf) < 2+n {
		return "", nil, ErrBadMessage
	}
	return string(buf[2 : 2+n]), buf[2+n:], nil
}

func putEndpoint(buf []byte, e *Endpoint) []byte {
	buf = putStr(buf, e.CountryCode)
	buf = putStr(buf, e.Country)
	buf = putStr(buf, e.City)
	buf = putStr(buf, e.ASName)
	var fixed [20]byte
	binary.LittleEndian.PutUint64(fixed[0:], uint64(int64(e.Lat*1e6)))
	binary.LittleEndian.PutUint64(fixed[8:], uint64(int64(e.Lon*1e6)))
	binary.LittleEndian.PutUint32(fixed[16:], e.ASN)
	return append(buf, fixed[:]...)
}

func getEndpoint(buf []byte, e *Endpoint) ([]byte, error) {
	var err error
	if e.CountryCode, buf, err = getStr(buf); err != nil {
		return nil, err
	}
	if e.Country, buf, err = getStr(buf); err != nil {
		return nil, err
	}
	if e.City, buf, err = getStr(buf); err != nil {
		return nil, err
	}
	if e.ASName, buf, err = getStr(buf); err != nil {
		return nil, err
	}
	if len(buf) < 20 {
		return nil, ErrBadMessage
	}
	e.Lat = float64(int64(binary.LittleEndian.Uint64(buf[0:]))) / 1e6
	e.Lon = float64(int64(binary.LittleEndian.Uint64(buf[8:]))) / 1e6
	e.ASN = binary.LittleEndian.Uint32(buf[16:])
	return buf[20:], nil
}

// MarshalEnriched encodes e into buf's storage (overwriting from the
// start, like buf[:0]) and returns the encoded slice. Pass nil to
// allocate; reuse the returned slice across calls to amortize.
func MarshalEnriched(buf []byte, e *Enriched) []byte {
	buf = append(buf[:0], enrichedVersion)
	var fixed [33]byte
	binary.LittleEndian.PutUint64(fixed[0:], uint64(e.Time))
	binary.LittleEndian.PutUint64(fixed[8:], uint64(e.InternalNs))
	binary.LittleEndian.PutUint64(fixed[16:], uint64(e.ExternalNs))
	binary.LittleEndian.PutUint64(fixed[24:], uint64(e.TotalNs))
	b := byte(0)
	if e.IPv6 {
		b = 1
	}
	fixed[32] = b
	buf = append(buf, fixed[:]...)
	buf = append(buf, e.SYNRetrans)
	buf = putEndpoint(buf, &e.Src)
	buf = putEndpoint(buf, &e.Dst)
	return buf
}

// UnmarshalEnriched decodes a message produced by MarshalEnriched.
func UnmarshalEnriched(buf []byte, e *Enriched) error {
	if len(buf) < 35 || buf[0] != enrichedVersion {
		return ErrBadMessage
	}
	e.Time = int64(binary.LittleEndian.Uint64(buf[1:]))
	e.InternalNs = int64(binary.LittleEndian.Uint64(buf[9:]))
	e.ExternalNs = int64(binary.LittleEndian.Uint64(buf[17:]))
	e.TotalNs = int64(binary.LittleEndian.Uint64(buf[25:]))
	e.IPv6 = buf[33] == 1
	e.SYNRetrans = buf[34]
	rest, err := getEndpoint(buf[35:], &e.Src)
	if err != nil {
		return err
	}
	rest, err = getEndpoint(rest, &e.Dst)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return ErrBadMessage
	}
	return nil
}
