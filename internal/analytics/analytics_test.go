package analytics

import (
	"context"
	"encoding/json"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"ruru/internal/core"
	"ruru/internal/geo"
	"ruru/internal/mq"
)

func sampleMeasurement() core.Measurement {
	return core.Measurement{
		Flow: core.FlowKey{
			Client:     netip.MustParseAddr("16.1.2.3"),
			Server:     netip.MustParseAddr("17.64.0.9"),
			ClientPort: 40001, ServerPort: 443,
		},
		Internal: 15_000_000, External: 30_000_000, Total: 45_000_000,
		SYNTime: 100, SYNACKTime: 30_000_100, ACKTime: 45_000_100,
		SYNRetrans: 1, Queue: 3,
	}
}

func TestMeasurementCodecRoundTrip(t *testing.T) {
	m := sampleMeasurement()
	buf := MarshalMeasurement(nil, &m)
	var got core.Measurement
	if err := UnmarshalMeasurement(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestMeasurementCodecV6(t *testing.T) {
	m := sampleMeasurement()
	m.IPv6 = true
	m.Flow.Client = netip.MustParseAddr("2001:db8::1")
	m.Flow.Server = netip.MustParseAddr("2001:db8::2")
	buf := MarshalMeasurement(nil, &m)
	var got core.Measurement
	if err := UnmarshalMeasurement(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("v6 round trip mismatch: %+v", got)
	}
}

func TestMeasurementCodecProperty(t *testing.T) {
	f := func(c, s [4]byte, cp, sp uint16, in, ex int64, retrans uint8, q uint8) bool {
		m := core.Measurement{
			Flow: core.FlowKey{
				Client:     netip.AddrFrom4(c),
				Server:     netip.AddrFrom4(s),
				ClientPort: cp, ServerPort: sp,
			},
			Internal: in, External: ex, Total: in + ex,
			SYNRetrans: retrans, Queue: int(q),
		}
		buf := MarshalMeasurement(nil, &m)
		var got core.Measurement
		if err := UnmarshalMeasurement(buf, &got); err != nil {
			return false
		}
		return got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasurementCodecRejectsBadInput(t *testing.T) {
	var m core.Measurement
	if err := UnmarshalMeasurement(nil, &m); err != ErrBadMessage {
		t.Fatalf("nil: %v", err)
	}
	if err := UnmarshalMeasurement(make([]byte, 10), &m); err != ErrBadMessage {
		t.Fatalf("short: %v", err)
	}
	good := MarshalMeasurement(nil, &m)
	good[0] = 99 // bad version
	if err := UnmarshalMeasurement(good, &m); err != ErrBadMessage {
		t.Fatalf("version: %v", err)
	}
}

func TestEnrichedCodecRoundTrip(t *testing.T) {
	e := Enriched{
		Time: 123456789, InternalNs: 15e6, ExternalNs: 30e6, TotalNs: 45e6,
		IPv6: true, SYNRetrans: 2,
		Src: Endpoint{CountryCode: "NZ", Country: "New Zealand", City: "Auckland",
			Lat: -36.85, Lon: 174.76, ASN: 64000, ASName: "AS-Auckland-0"},
		Dst: Endpoint{CountryCode: "US", Country: "United States", City: "Los Angeles",
			Lat: 34.05, Lon: -118.24, ASN: 64004, ASName: "AS-LA-0"},
	}
	buf := MarshalEnriched(nil, &e)
	var got Enriched
	if err := UnmarshalEnriched(buf, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
}

func TestEnrichedCodecProperty(t *testing.T) {
	f := func(city1, city2, as1 string, lat, lon float64, t0, in, ex int64) bool {
		if len(city1) > 200 {
			city1 = city1[:200]
		}
		if len(city2) > 200 {
			city2 = city2[:200]
		}
		if len(as1) > 200 {
			as1 = as1[:200]
		}
		// Lat/lon are fixed-point µdeg on the wire; quantize inputs.
		lat = float64(int64(lat*1e6)%180_000_000) / 1e6
		lon = float64(int64(lon*1e6)%180_000_000) / 1e6
		e := Enriched{
			Time: t0, InternalNs: in, ExternalNs: ex, TotalNs: in + ex,
			Src: Endpoint{City: city1, ASName: as1, Lat: lat, Lon: lon},
			Dst: Endpoint{City: city2},
		}
		buf := MarshalEnriched(nil, &e)
		var got Enriched
		if err := UnmarshalEnriched(buf, &got); err != nil {
			return false
		}
		return reflect.DeepEqual(got, e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEnrichedCodecRejectsTruncation(t *testing.T) {
	e := Enriched{Src: Endpoint{City: "Auckland"}, Dst: Endpoint{City: "LA"}}
	buf := MarshalEnriched(nil, &e)
	for cut := 0; cut < len(buf); cut++ {
		var got Enriched
		if err := UnmarshalEnriched(buf[:cut], &got); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage also rejected.
	var got Enriched
	if err := UnmarshalEnriched(append(buf, 0), &got); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestEnrichedJSONStable(t *testing.T) {
	e := Enriched{Time: 1, Src: Endpoint{CountryCode: "NZ", City: "Auckland"}}
	data, err := json.Marshal(&e)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"time", "internal_ns", "external_ns", "total_ns", "src", "dst"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("JSON missing %q: %s", key, data)
		}
	}
	src := m["src"].(map[string]any)
	if src["cc"] != "NZ" || src["city"] != "Auckland" {
		t.Fatalf("src endpoint JSON: %v", src)
	}
}

func newWorld(t testing.TB) *geo.World {
	t.Helper()
	w, err := geo.NewWorld(geo.WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestEnricherEndToEnd(t *testing.T) {
	w := newWorld(t)
	bus := mq.NewBus()
	defer bus.Close()
	enr, err := NewEnricher(Config{DB: w.DB(), Bus: bus, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := bus.Subscribe(TopicEnriched, 64)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go enr.Run(ctx)

	sink := NewBusSink(bus)
	m := core.Measurement{
		Flow: core.FlowKey{
			Client:     w.Addr(0, 1, 99), // Auckland
			Server:     w.Addr(1, 2, 50), // Los Angeles
			ClientPort: 40000, ServerPort: 443,
		},
		Internal: 15e6, External: 130e6, Total: 145e6, ACKTime: 42,
	}
	sink.Emit(&m)

	select {
	case msg := <-out.C():
		var e Enriched
		if err := UnmarshalEnriched(msg.Payload, &e); err != nil {
			t.Fatal(err)
		}
		if e.Src.City != "Auckland" || e.Dst.City != "Los Angeles" {
			t.Fatalf("enrichment wrong: %+v", e)
		}
		if e.Src.ASN != w.Cities[0].ASNs[1] || e.Dst.ASN != w.Cities[1].ASNs[2] {
			t.Fatalf("ASNs wrong: %d, %d", e.Src.ASN, e.Dst.ASN)
		}
		if e.InternalNs != 15e6 || e.ExternalNs != 130e6 || e.Time != 42 {
			t.Fatalf("latencies wrong: %+v", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no enriched message")
	}
	st := enr.Stats()
	if st.In != 1 || st.Out != 1 || st.LookupMisses != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestEnricherUnknownAddress(t *testing.T) {
	w := newWorld(t)
	bus := mq.NewBus()
	defer bus.Close()
	enr, err := NewEnricher(Config{DB: w.DB(), Bus: bus, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := bus.Subscribe(TopicEnriched, 16)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go enr.Run(ctx)

	m := core.Measurement{
		Flow: core.FlowKey{
			Client:     netip.MustParseAddr("8.8.8.8"), // not in the world
			Server:     w.Addr(1, 0, 1),
			ClientPort: 1, ServerPort: 2,
		},
	}
	NewBusSink(bus).Emit(&m)
	select {
	case msg := <-out.C():
		var e Enriched
		if err := UnmarshalEnriched(msg.Payload, &e); err != nil {
			t.Fatal(err)
		}
		if e.Src.CountryCode != "??" || e.Src.City != "Unknown" {
			t.Fatalf("unknown endpoint not flagged: %+v", e.Src)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no message")
	}
	if enr.Stats().LookupMisses != 1 {
		t.Fatalf("stats: %+v", enr.Stats())
	}
}

func TestEnricherFilterModule(t *testing.T) {
	// The paper's extensibility claim: a filter dropping non-NZ sources.
	w := newWorld(t)
	bus := mq.NewBus()
	defer bus.Close()
	enr, err := NewEnricher(Config{DB: w.DB(), Bus: bus, Workers: 1,
		Filter: func(e *Enriched) bool { return e.Src.CountryCode == "NZ" }})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := bus.Subscribe(TopicEnriched, 16)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go enr.Run(ctx)

	sink := NewBusSink(bus)
	mNZ := core.Measurement{Flow: core.FlowKey{Client: w.Addr(0, 0, 1), Server: w.Addr(1, 0, 1)}}
	mUS := core.Measurement{Flow: core.FlowKey{Client: w.Addr(1, 0, 2), Server: w.Addr(0, 0, 2)}}
	sink.Emit(&mUS)
	sink.Emit(&mNZ)

	select {
	case msg := <-out.C():
		var e Enriched
		if err := UnmarshalEnriched(msg.Payload, &e); err != nil {
			t.Fatal(err)
		}
		if e.Src.CountryCode != "NZ" {
			t.Fatalf("filter let through %v", e.Src.CountryCode)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no message")
	}
	select {
	case <-out.C():
		t.Fatal("filtered message delivered")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestEnricherValidation(t *testing.T) {
	w := newWorld(t)
	bus := mq.NewBus()
	defer bus.Close()
	if _, err := NewEnricher(Config{Bus: bus}); err == nil {
		t.Fatal("nil DB accepted")
	}
	if _, err := NewEnricher(Config{DB: w.DB()}); err == nil {
		t.Fatal("nil bus accepted")
	}
}

func TestEnricherThroughputManyMeasurements(t *testing.T) {
	w := newWorld(t)
	bus := mq.NewBus()
	defer bus.Close()
	enr, err := NewEnricher(Config{DB: w.DB(), Bus: bus, Workers: 4, HWM: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := bus.Subscribe(TopicEnriched, 1<<16)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go enr.Run(ctx)

	sink := NewBusSink(bus)
	const n = 5000
	go func() {
		for i := 0; i < n; i++ {
			m := core.Measurement{
				Flow: core.FlowKey{
					Client:     w.Addr(i%len(w.Cities), i%4, uint32(i)),
					Server:     w.Addr((i+1)%len(w.Cities), i%4, uint32(i)),
					ClientPort: uint16(i), ServerPort: 443,
				},
				Internal: int64(i), External: int64(2 * i), Total: int64(3 * i),
			}
			sink.Emit(&m)
		}
	}()
	received := 0
	deadline := time.After(10 * time.Second)
	for received < n {
		select {
		case <-out.C():
			received++
		case <-deadline:
			t.Fatalf("received %d/%d (stats %+v)", received, n, enr.Stats())
		}
	}
}

func TestEnricherShedsLoadAtHWM(t *testing.T) {
	// ZeroMQ semantics: when the enricher cannot keep up, the raw topic
	// drops at the subscription HWM instead of stalling the publisher.
	w := newWorld(t)
	bus := mq.NewBus()
	defer bus.Close()
	enr, err := NewEnricher(Config{DB: w.DB(), Bus: bus, Workers: 1, HWM: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Do NOT run the enricher: its subscription queue fills at 8.
	sink := NewBusSink(bus)
	m := core.Measurement{Flow: core.FlowKey{
		Client: w.Addr(0, 0, 1), Server: w.Addr(1, 0, 1)}}
	start := time.Now()
	for i := 0; i < 10000; i++ {
		sink.Emit(&m)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("publisher blocked on saturated enricher")
	}
	if enr.Stats().SubDropped != 10000-8 {
		t.Fatalf("dropped = %d, want %d", enr.Stats().SubDropped, 10000-8)
	}
}

func BenchmarkEnrich(b *testing.B) {
	w := newWorld(b)
	enr := &Enricher{cfg: Config{DB: w.DB()}}
	m := core.Measurement{
		Flow: core.FlowKey{
			Client: w.Addr(0, 1, 99), Server: w.Addr(1, 2, 50),
			ClientPort: 40000, ServerPort: 443,
		},
	}
	var e Enriched
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enr.enrich(&m, &e)
	}
}

func BenchmarkMarshalEnriched(b *testing.B) {
	e := Enriched{
		Src: Endpoint{CountryCode: "NZ", Country: "New Zealand", City: "Auckland", ASName: "AS-X"},
		Dst: Endpoint{CountryCode: "US", Country: "United States", City: "Los Angeles", ASName: "AS-Y"},
	}
	buf := make([]byte, 0, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = MarshalEnriched(buf, &e)
	}
}
